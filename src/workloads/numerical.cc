#include "workloads/numerical.h"

#include <cmath>

#include "baselines/fused.h"
#include "common/rng.h"
#include "matrix/annotated.h"
#include "vecmath/annotated.h"
#include "vecmath/vecmath.h"

namespace workloads {
namespace {

void FillUniform(mz::AlignedBuffer<double>* buf, mz::Rng* rng, double lo, double hi) {
  for (double& x : *buf) {
    x = rng->NextDouble(lo, hi);
  }
}

// The two call surfaces: raw library vs wrapped library. Same signatures, so
// the workload body is written once (the paper's "no application changes"
// property, modulo the namespace import).
struct BaseVecApi {
  template <typename... A>
  void Log(A... a) const {
    vecmath::Log(a...);
  }
  template <typename... A>
  void Exp(A... a) const {
    vecmath::Exp(a...);
  }
  template <typename... A>
  void Sqrt(A... a) const {
    vecmath::Sqrt(a...);
  }
  template <typename... A>
  void Erf(A... a) const {
    vecmath::Erf(a...);
  }
  template <typename... A>
  void Sin(A... a) const {
    vecmath::Sin(a...);
  }
  template <typename... A>
  void Cos(A... a) const {
    vecmath::Cos(a...);
  }
  template <typename... A>
  void Asin(A... a) const {
    vecmath::Asin(a...);
  }
  template <typename... A>
  void Add(A... a) const {
    vecmath::Add(a...);
  }
  template <typename... A>
  void Sub(A... a) const {
    vecmath::Sub(a...);
  }
  template <typename... A>
  void Mul(A... a) const {
    vecmath::Mul(a...);
  }
  template <typename... A>
  void Div(A... a) const {
    vecmath::Div(a...);
  }
  template <typename... A>
  void AddC(A... a) const {
    vecmath::AddC(a...);
  }
  template <typename... A>
  void SubC(A... a) const {
    vecmath::SubC(a...);
  }
  template <typename... A>
  void MulC(A... a) const {
    vecmath::MulC(a...);
  }
  template <typename... A>
  void RSubC(A... a) const {
    vecmath::RSubC(a...);
  }
};

struct MozartVecApi {
  template <typename... A>
  void Log(A... a) const {
    mzvec::Log(a...);
  }
  template <typename... A>
  void Exp(A... a) const {
    mzvec::Exp(a...);
  }
  template <typename... A>
  void Sqrt(A... a) const {
    mzvec::Sqrt(a...);
  }
  template <typename... A>
  void Erf(A... a) const {
    mzvec::Erf(a...);
  }
  template <typename... A>
  void Sin(A... a) const {
    mzvec::Sin(a...);
  }
  template <typename... A>
  void Cos(A... a) const {
    mzvec::Cos(a...);
  }
  template <typename... A>
  void Asin(A... a) const {
    mzvec::Asin(a...);
  }
  template <typename... A>
  void Add(A... a) const {
    mzvec::Add(a...);
  }
  template <typename... A>
  void Sub(A... a) const {
    mzvec::Sub(a...);
  }
  template <typename... A>
  void Mul(A... a) const {
    mzvec::Mul(a...);
  }
  template <typename... A>
  void Div(A... a) const {
    mzvec::Div(a...);
  }
  template <typename... A>
  void AddC(A... a) const {
    mzvec::AddC(a...);
  }
  template <typename... A>
  void SubC(A... a) const {
    mzvec::SubC(a...);
  }
  template <typename... A>
  void MulC(A... a) const {
    mzvec::MulC(a...);
  }
  template <typename... A>
  void RSubC(A... a) const {
    mzvec::RSubC(a...);
  }
};

}  // namespace

// ---- Black Scholes ----

BlackScholes::BlackScholes(long n, std::uint64_t seed)
    : n_(n),
      price_(static_cast<std::size_t>(n)),
      strike_(static_cast<std::size_t>(n)),
      tte_(static_cast<std::size_t>(n)),
      call_(static_cast<std::size_t>(n)),
      put_(static_cast<std::size_t>(n)),
      d1_(static_cast<std::size_t>(n)),
      d2_(static_cast<std::size_t>(n)),
      nd1_(static_cast<std::size_t>(n)),
      nd2_(static_cast<std::size_t>(n)),
      disc_(static_cast<std::size_t>(n)),
      vol_sqrt_(static_cast<std::size_t>(n)),
      tmp_(static_cast<std::size_t>(n)) {
  mz::Rng rng(seed);
  FillUniform(&price_, &rng, 20.0, 120.0);
  FillUniform(&strike_, &rng, 20.0, 120.0);
  FillUniform(&tte_, &rng, 0.25, 2.0);
}

template <typename Api>
void BlackScholes::RunWithApi(const Api& api) {
  const long n = n_;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  const double rsig = rate_ + 0.5 * vol_ * vol_;
  // d1 = (log(price / strike) + rsig * t) / (vol * sqrt(t))
  api.Div(n, price_.data(), strike_.data(), d1_.data());
  api.Log(n, d1_.data(), d1_.data());
  api.MulC(n, tte_.data(), rsig, tmp_.data());
  api.Add(n, d1_.data(), tmp_.data(), d1_.data());
  api.Sqrt(n, tte_.data(), vol_sqrt_.data());
  api.MulC(n, vol_sqrt_.data(), vol_, vol_sqrt_.data());
  api.Div(n, d1_.data(), vol_sqrt_.data(), d1_.data());
  api.Sub(n, d1_.data(), vol_sqrt_.data(), d2_.data());
  // N(d1), N(d2) via erf
  api.MulC(n, d1_.data(), inv_sqrt2, nd1_.data());
  api.Erf(n, nd1_.data(), nd1_.data());
  api.MulC(n, nd1_.data(), 0.5, nd1_.data());
  api.AddC(n, nd1_.data(), 0.5, nd1_.data());
  api.MulC(n, d2_.data(), inv_sqrt2, nd2_.data());
  api.Erf(n, nd2_.data(), nd2_.data());
  api.MulC(n, nd2_.data(), 0.5, nd2_.data());
  api.AddC(n, nd2_.data(), 0.5, nd2_.data());
  // discounted strike
  api.MulC(n, tte_.data(), -rate_, disc_.data());
  api.Exp(n, disc_.data(), disc_.data());
  api.Mul(n, strike_.data(), disc_.data(), tmp_.data());
  // call = price * N(d1) - strike * e^{-rt} * N(d2)
  api.Mul(n, price_.data(), nd1_.data(), call_.data());
  api.Mul(n, tmp_.data(), nd2_.data(), put_.data());
  api.Sub(n, call_.data(), put_.data(), call_.data());
  // put = strike * e^{-rt} * N(-d2) - price * N(-d1)
  api.RSubC(n, nd1_.data(), 1.0, nd1_.data());
  api.RSubC(n, nd2_.data(), 1.0, nd2_.data());
  api.Mul(n, tmp_.data(), nd2_.data(), put_.data());
  api.Mul(n, price_.data(), nd1_.data(), d1_.data());
  api.Sub(n, put_.data(), d1_.data(), put_.data());
}

void BlackScholes::RunBase() { RunWithApi(BaseVecApi{}); }

void BlackScholes::RunMozart(mz::Runtime* rt) {
  mz::RuntimeScope scope(rt);
  RunWithApi(MozartVecApi{});
  rt->Evaluate();
}

void BlackScholes::RunFused(int threads) {
  baselines::BlackScholesFused(n_, price_.data(), strike_.data(), tte_.data(), rate_, vol_,
                               call_.data(), put_.data(), threads);
}

double BlackScholes::Checksum() const {
  double sum = 0;
  for (long i = 0; i < n_; i += 97) {
    sum += call_[static_cast<std::size_t>(i)] + put_[static_cast<std::size_t>(i)];
  }
  return sum;
}

// ---- Haversine ----

Haversine::Haversine(long n, std::uint64_t seed)
    : n_(n),
      lat_(static_cast<std::size_t>(n)),
      lon_(static_cast<std::size_t>(n)),
      dist_(static_cast<std::size_t>(n)),
      a1_(static_cast<std::size_t>(n)),
      a2_(static_cast<std::size_t>(n)),
      coslat_(static_cast<std::size_t>(n)) {
  mz::Rng rng(seed);
  lat0_ = 0.70984286;  // JFK, radians (as in the Weld benchmark)
  lon0_ = -1.2908886;
  FillUniform(&lat_, &rng, 0.5, 0.9);
  FillUniform(&lon_, &rng, -1.5, -1.0);
}

template <typename Api>
void Haversine::RunWithApi(const Api& api) {
  const long n = n_;
  const double kEarthRadiusMiles = 3959.0;
  api.SubC(n, lat_.data(), lat0_, a1_.data());
  api.MulC(n, a1_.data(), 0.5, a1_.data());
  api.Sin(n, a1_.data(), a1_.data());
  api.Mul(n, a1_.data(), a1_.data(), a1_.data());
  api.SubC(n, lon_.data(), lon0_, a2_.data());
  api.MulC(n, a2_.data(), 0.5, a2_.data());
  api.Sin(n, a2_.data(), a2_.data());
  api.Mul(n, a2_.data(), a2_.data(), a2_.data());
  api.Cos(n, lat_.data(), coslat_.data());
  api.Mul(n, a2_.data(), coslat_.data(), a2_.data());
  api.MulC(n, a2_.data(), std::cos(lat0_), a2_.data());
  api.Add(n, a1_.data(), a2_.data(), a1_.data());
  api.Sqrt(n, a1_.data(), a1_.data());
  api.Asin(n, a1_.data(), a1_.data());
  api.MulC(n, a1_.data(), 2.0 * kEarthRadiusMiles, dist_.data());
}

void Haversine::RunBase() { RunWithApi(BaseVecApi{}); }

void Haversine::RunMozart(mz::Runtime* rt) {
  mz::RuntimeScope scope(rt);
  RunWithApi(MozartVecApi{});
  rt->Evaluate();
}

void Haversine::RunFused(int threads) {
  baselines::HaversineFused(n_, lat_.data(), lon_.data(), lat0_, lon0_, dist_.data(), threads);
}

double Haversine::Checksum() const {
  double sum = 0;
  for (long i = 0; i < n_; i += 97) {
    sum += dist_[static_cast<std::size_t>(i)];
  }
  return sum;
}

// ---- nBody ----

NBody::NBody(long bodies, int steps, std::uint64_t seed)
    : n_(bodies),
      steps_(steps),
      seed_(seed),
      dx_(bodies, bodies),
      dy_(bodies, bodies),
      dz_(bodies, bodies),
      t1_(bodies, bodies),
      t2_(bodies, bodies),
      t3_(bodies, bodies) {
  Reset(seed);
}

void NBody::Reset(std::uint64_t seed) {
  mz::Rng rng(seed);
  auto fill = [&](std::vector<double>* v, double lo, double hi) {
    v->resize(static_cast<std::size_t>(n_));
    for (double& x : *v) {
      x = rng.NextDouble(lo, hi);
    }
  };
  fill(&x_, -1.0, 1.0);
  fill(&y_, -1.0, 1.0);
  fill(&z_, -1.0, 1.0);
  fill(&vx_, -0.1, 0.1);
  fill(&vy_, -0.1, 0.1);
  fill(&vz_, -0.1, 0.1);
}

void NBody::RunBase() {
  Reset(seed_);
  for (int s = 0; s < steps_; ++s) {
    matrix::OuterDiff(n_, x_.data(), &dx_);
    matrix::OuterDiff(n_, y_.data(), &dy_);
    matrix::OuterDiff(n_, z_.data(), &dz_);
    matrix::Mul(&dx_, &dx_, &t1_);
    matrix::Mul(&dy_, &dy_, &t2_);
    matrix::Mul(&dz_, &dz_, &t3_);
    matrix::Add(&t1_, &t2_, &t1_);
    matrix::Add(&t1_, &t3_, &t1_);
    matrix::AddScalar(&t1_, softening_, &t1_);
    matrix::Pow(&t1_, -1.5, &t1_);
    matrix::Mul(&dx_, &t1_, &t2_);
    std::vector<double> ax = matrix::SumReduceToVector(&t2_, 1);
    matrix::Mul(&dy_, &t1_, &t2_);
    std::vector<double> ay = matrix::SumReduceToVector(&t2_, 1);
    matrix::Mul(&dz_, &t1_, &t2_);
    std::vector<double> az = matrix::SumReduceToVector(&t2_, 1);
    vecmath::Axpy(n_, dt_, ax.data(), vx_.data());
    vecmath::Axpy(n_, dt_, ay.data(), vy_.data());
    vecmath::Axpy(n_, dt_, az.data(), vz_.data());
    vecmath::Axpy(n_, dt_, vx_.data(), x_.data());
    vecmath::Axpy(n_, dt_, vy_.data(), y_.data());
    vecmath::Axpy(n_, dt_, vz_.data(), z_.data());
  }
}

void NBody::RunMozart(mz::Runtime* rt) {
  Reset(seed_);
  mz::RuntimeScope scope(rt);
  for (int s = 0; s < steps_; ++s) {
    mzmat::OuterDiff(n_, x_.data(), &dx_);
    mzmat::OuterDiff(n_, y_.data(), &dy_);
    mzmat::OuterDiff(n_, z_.data(), &dz_);
    mzmat::Mul(&dx_, &dx_, &t1_);
    mzmat::Mul(&dy_, &dy_, &t2_);
    mzmat::Mul(&dz_, &dz_, &t3_);
    mzmat::Add(&t1_, &t2_, &t1_);
    mzmat::Add(&t1_, &t3_, &t1_);
    mzmat::AddScalar(&t1_, softening_, &t1_);
    mzmat::Pow(&t1_, -1.5, &t1_);
    // Capture all three reductions before resolving, so the whole force
    // computation pipelines as one stage.
    mzmat::Mul(&dx_, &t1_, &t2_);
    auto fx = mzmat::SumReduceToVector(&t2_, 1);
    mzmat::Mul(&dy_, &t1_, &t3_);
    auto fy = mzmat::SumReduceToVector(&t3_, 1);
    mzmat::Mul(&dz_, &t1_, &dx_);  // dx_ is dead here; reuse as scratch
    auto fz = mzmat::SumReduceToVector(&dx_, 1);
    std::vector<double> ax = fx.get();
    std::vector<double> ay = fy.get();
    std::vector<double> az = fz.get();
    mzvec::Axpy(n_, dt_, ax.data(), vx_.data());
    mzvec::Axpy(n_, dt_, ay.data(), vy_.data());
    mzvec::Axpy(n_, dt_, az.data(), vz_.data());
    mzvec::Axpy(n_, dt_, vx_.data(), x_.data());
    mzvec::Axpy(n_, dt_, vy_.data(), y_.data());
    mzvec::Axpy(n_, dt_, vz_.data(), z_.data());
    // The acceleration vectors are loop-local: lazily captured pointers must
    // not outlive their data, so force the update stage before they die.
    rt->Evaluate();
  }
}

void NBody::RunFused(int threads) {
  Reset(seed_);
  for (int s = 0; s < steps_; ++s) {
    baselines::NBodyStepFused(n_, x_.data(), y_.data(), z_.data(), vx_.data(), vy_.data(),
                              vz_.data(), dt_, softening_, threads);
  }
}

double NBody::Checksum() const {
  double sum = 0;
  for (long i = 0; i < n_; ++i) {
    sum += x_[static_cast<std::size_t>(i)] + y_[static_cast<std::size_t>(i)] +
           z_[static_cast<std::size_t>(i)];
  }
  return sum;
}

// ---- Shallow Water ----

ShallowWater::ShallowWater(long grid, int steps, std::uint64_t seed)
    : grid_(grid),
      steps_(steps),
      seed_(seed),
      h_(grid, grid),
      u_(grid, grid),
      v_(grid, grid),
      h2_(grid, grid),
      u2_(grid, grid),
      v2_(grid, grid),
      ra_(grid, grid),
      rb_(grid, grid),
      dudx_(grid, grid),
      dvdy_(grid, grid),
      dhdx_(grid, grid),
      dhdy_(grid, grid),
      div_(grid, grid) {
  Reset(seed);
}

void ShallowWater::Reset(std::uint64_t seed) {
  (void)seed;
  // Gaussian drop in the middle of a unit-depth basin (the classic setup).
  double cx = static_cast<double>(grid_) / 2.0;
  double cy = static_cast<double>(grid_) / 2.0;
  double w = static_cast<double>(grid_) / 8.0;
  for (long r = 0; r < grid_; ++r) {
    for (long c = 0; c < grid_; ++c) {
      double dr = (static_cast<double>(r) - cx) / w;
      double dc = (static_cast<double>(c) - cy) / w;
      h_.at(r, c) = 1.0 + 0.5 * std::exp(-(dr * dr + dc * dc));
      u_.at(r, c) = 0.0;
      v_.at(r, c) = 0.0;
    }
  }
}

namespace {

// One discretized step: periodic central differences. Template over the two
// call surfaces (raw matrix library vs annotated wrappers).
template <typename M>
struct SwApi;

struct SwBase {};
struct SwMoz {};

template <>
struct SwApi<SwBase> {
  static void RollRows(const matrix::Matrix* a, long s, matrix::Matrix* o) {
    matrix::RollRows(a, s, o);
  }
  static void RollCols(const matrix::Matrix* a, long s, matrix::Matrix* o) {
    matrix::RollCols(a, s, o);
  }
  static void Sub(const matrix::Matrix* a, const matrix::Matrix* b, matrix::Matrix* o) {
    matrix::Sub(a, b, o);
  }
  static void Add(const matrix::Matrix* a, const matrix::Matrix* b, matrix::Matrix* o) {
    matrix::Add(a, b, o);
  }
  static void MulScalar(const matrix::Matrix* a, double c, matrix::Matrix* o) {
    matrix::MulScalar(a, c, o);
  }
  static void AddScaled(const matrix::Matrix* a, double al, const matrix::Matrix* b,
                        matrix::Matrix* o) {
    matrix::AddScaled(a, al, b, o);
  }
};

template <>
struct SwApi<SwMoz> {
  static void RollRows(const matrix::Matrix* a, long s, matrix::Matrix* o) {
    mzmat::RollRows(a, s, o);
  }
  static void RollCols(const matrix::Matrix* a, long s, matrix::Matrix* o) {
    mzmat::RollCols(a, s, o);
  }
  static void Sub(const matrix::Matrix* a, const matrix::Matrix* b, matrix::Matrix* o) {
    mzmat::Sub(a, b, o);
  }
  static void Add(const matrix::Matrix* a, const matrix::Matrix* b, matrix::Matrix* o) {
    mzmat::Add(a, b, o);
  }
  static void MulScalar(const matrix::Matrix* a, double c, matrix::Matrix* o) {
    mzmat::MulScalar(a, c, o);
  }
  static void AddScaled(const matrix::Matrix* a, double al, const matrix::Matrix* b,
                        matrix::Matrix* o) {
    mzmat::AddScaled(a, al, b, o);
  }
};

}  // namespace

template <typename Mode, typename W>
static void ShallowWaterSteps(W* w, int steps, matrix::Matrix* h, matrix::Matrix* u,
                              matrix::Matrix* v, matrix::Matrix* h2, matrix::Matrix* u2,
                              matrix::Matrix* v2, double dt, double dx, double g,
                              matrix::Matrix* ra, matrix::Matrix* rb, matrix::Matrix* dudx,
                              matrix::Matrix* dvdy, matrix::Matrix* dhdx, matrix::Matrix* dhdy,
                              matrix::Matrix* div) {
  (void)w;
  using Api = SwApi<Mode>;
  double inv_2dx = 1.0 / (2.0 * dx);
  matrix::Matrix* src_h = h;
  matrix::Matrix* src_u = u;
  matrix::Matrix* src_v = v;
  matrix::Matrix* dst_h = h2;
  matrix::Matrix* dst_u = u2;
  matrix::Matrix* dst_v = v2;
  for (int s = 0; s < steps; ++s) {
    // du/dx (rows are the x dimension; periodic)
    Api::RollRows(src_u, 1, ra);
    Api::RollRows(src_u, -1, rb);
    Api::Sub(ra, rb, dudx);
    Api::MulScalar(dudx, inv_2dx, dudx);
    // dv/dy
    Api::RollCols(src_v, 1, ra);
    Api::RollCols(src_v, -1, rb);
    Api::Sub(ra, rb, dvdy);
    Api::MulScalar(dvdy, inv_2dx, dvdy);
    // dh/dx, dh/dy
    Api::RollRows(src_h, 1, ra);
    Api::RollRows(src_h, -1, rb);
    Api::Sub(ra, rb, dhdx);
    Api::MulScalar(dhdx, inv_2dx, dhdx);
    Api::RollCols(src_h, 1, ra);
    Api::RollCols(src_h, -1, rb);
    Api::Sub(ra, rb, dhdy);
    Api::MulScalar(dhdy, inv_2dx, dhdy);
    // updates
    Api::Add(dudx, dvdy, div);
    Api::AddScaled(src_h, -dt, div, dst_h);
    Api::AddScaled(src_u, -dt * g, dhdx, dst_u);
    Api::AddScaled(src_v, -dt * g, dhdy, dst_v);
    std::swap(src_h, dst_h);
    std::swap(src_u, dst_u);
    std::swap(src_v, dst_v);
  }
}

void ShallowWater::RunBase() {
  Reset(seed_);
  ShallowWaterSteps<SwBase>(this, steps_, &h_, &u_, &v_, &h2_, &u2_, &v2_, dt_, dx_, g_, &ra_,
                            &rb_, &dudx_, &dvdy_, &dhdx_, &dhdy_, &div_);
}

void ShallowWater::RunMozart(mz::Runtime* rt) {
  Reset(seed_);
  mz::RuntimeScope scope(rt);
  ShallowWaterSteps<SwMoz>(this, steps_, &h_, &u_, &v_, &h2_, &u2_, &v2_, dt_, dx_, g_, &ra_, &rb_,
                           &dudx_, &dvdy_, &dhdx_, &dhdy_, &div_);
  rt->Evaluate();
}

void ShallowWater::RunFused(int threads) {
  Reset(seed_);
  matrix::Matrix* src_h = &h_;
  matrix::Matrix* src_u = &u_;
  matrix::Matrix* src_v = &v_;
  matrix::Matrix* dst_h = &h2_;
  matrix::Matrix* dst_u = &u2_;
  matrix::Matrix* dst_v = &v2_;
  for (int s = 0; s < steps_; ++s) {
    baselines::ShallowWaterStepFused(src_h, src_u, src_v, dst_h, dst_u, dst_v, dt_, dx_, g_,
                                     threads);
    std::swap(src_h, dst_h);
    std::swap(src_u, dst_u);
    std::swap(src_v, dst_v);
  }
}

double ShallowWater::Checksum() const {
  const matrix::Matrix& final_h = steps_ % 2 == 0 ? h_ : h2_;
  double sum = 0;
  for (long r = 0; r < grid_; r += 7) {
    for (long c = 0; c < grid_; c += 7) {
      sum += final_h.at(r, c);
    }
  }
  return sum;
}

}  // namespace workloads
