#include "workloads/analytics.h"

#include <cmath>

#include "baselines/fused.h"
#include "dataframe/annotated.h"
#include "dataframe/ops.h"
#include "image/annotated.h"
#include "nlp/annotated.h"
#include "workloads/data_gen.h"

namespace workloads {

// ---- Data Cleaning ----

DataCleaning::DataCleaning(long rows, std::uint64_t seed)
    : requests_(Make311Requests(rows, seed)) {}

void DataCleaning::RunBase() {
  const df::Column& zip = requests_.col("incident_zip");
  df::Column no_dash = df::StrRemoveChar(zip, '-');
  df::Column five = df::StrSlice(no_dash, 0, 5);
  df::Column len_mask = df::ColEqC(df::IntToDouble(df::StrLen(five)), 5.0);
  df::Column numeric = df::StrIsNumeric(five);
  df::Column ok = df::MaskAnd(len_mask, numeric);
  df::Column cleaned = df::StrWhere(ok, five, "nan");
  df::Column parsed = df::StrToDouble(cleaned);
  df::Column nan_mask = df::ColIsNaN(parsed);
  df::Column valid = df::ColFillNaN(parsed, 0.0);
  nan_count_ = df::ColSum(df::IntToDouble(nan_mask));
  valid_sum_ = df::ColSum(valid);
}

void DataCleaning::RunMozart(mz::Runtime* rt) {
  mz::RuntimeScope scope(rt);
  mz::Future<double> nan_count;
  mz::Future<double> valid_sum;
  {
    // Intermediates are scoped so their Futures die before evaluation —
    // exactly what Python refcounting does for rebound temporaries. Values
    // nothing can observe are never merged (they live only as pipeline
    // pieces), which is essential for operator-at-a-time performance.
    auto zip = mzdf::ColFromFrame(requests_, 0);
    auto no_dash = mzdf::StrRemoveChar(zip, '-');
    auto five = mzdf::StrSlice(no_dash, 0, 5);
    auto len_mask = mzdf::ColEqC(mzdf::IntToDouble(mzdf::StrLen(five)), 5.0);
    auto numeric = mzdf::StrIsNumeric(five);
    auto ok = mzdf::MaskAnd(len_mask, numeric);
    auto cleaned = mzdf::StrWhere(ok, five, "nan");
    auto parsed = mzdf::StrToDouble(cleaned);
    auto nan_mask = mzdf::ColIsNaN(parsed);
    auto valid = mzdf::ColFillNaN(parsed, 0.0);
    nan_count = mzdf::ColSum(mzdf::IntToDouble(nan_mask));
    valid_sum = mzdf::ColSum(valid);
  }
  nan_count_ = nan_count.get();
  valid_sum_ = valid_sum.get();
}

void DataCleaning::RunFused(int threads) {
  baselines::DataCleaningFused(requests_, &nan_count_, &valid_sum_, threads);
}

// ---- Crime Index ----

CrimeIndex::CrimeIndex(long rows, std::uint64_t seed) : cities_(MakeCityStats(rows, seed)) {}

void CrimeIndex::RunBase() {
  const df::Column& population = cities_.col("population");
  const df::Column& crimes = cities_.col("crimes");
  df::Column big = df::ColGtC(population, 500000.0);
  df::DataFrame big_cities = df::FilterRows(cities_, big);
  df::Column ratio = df::ColDiv(big_cities.col("crimes"), big_cities.col("population"));
  df::Column high = df::ColGtC(ratio, 0.02);
  df::Column clipped = df::ColWhere(df::MaskNot(high), ratio, 0.032);
  df::Column index = df::ColMulC(clipped, 1000.0);
  double sum = df::ColSum(index);
  double count = df::ColCount(index);
  (void)crimes;
  index_ = count > 0 ? sum / count : 0.0;
}

void CrimeIndex::RunMozart(mz::Runtime* rt) {
  mz::RuntimeScope scope(rt);
  mz::Future<double> sum;
  mz::Future<double> count;
  {
    auto population = mzdf::ColFromFrame(cities_, 1);
    auto big = mzdf::ColGtC(population, 500000.0);
    auto big_cities = mzdf::FilterRows(cities_, big);
    auto crimes_f = mzdf::ColFromFrame(big_cities, 2);
    auto pop_f = mzdf::ColFromFrame(big_cities, 1);
    auto ratio = mzdf::ColDiv(crimes_f, pop_f);
    auto high = mzdf::ColGtC(ratio, 0.02);
    auto clipped = mzdf::ColWhere(mzdf::MaskNot(high), ratio, 0.032);
    auto index = mzdf::ColMulC(clipped, 1000.0);
    sum = mzdf::ColSum(index);
    count = mzdf::ColCount(index);
  }
  double s = sum.get();
  double c = count.get();
  index_ = c > 0 ? s / c : 0.0;
}

void CrimeIndex::RunFused(int threads) { index_ = baselines::CrimeIndexFused(cities_, threads); }

// ---- Birth Analysis ----

BirthAnalysis::BirthAnalysis(long rows, std::uint64_t seed)
    : births_(MakeBabyNames(rows, seed)) {}

double BirthAnalysis::GroupChecksum(const df::DataFrame& grouped) {
  // Sort-independent checksum over (year, gender, sum) triples.
  double acc = 0;
  for (long r = 0; r < grouped.num_rows(); ++r) {
    double year = static_cast<double>(grouped.col(0).i64(r));
    double gender = static_cast<double>(grouped.col(1).i64(r));
    acc += year * 31.0 + gender * 7.0 + grouped.col("sum").d(r) * 1e-3;
  }
  return acc;
}

void BirthAnalysis::RunBase() {
  df::Column lesl = df::StrStartsWith(births_.col("name"), "Lesl");
  df::DataFrame filtered = df::FilterRows(births_, lesl);
  df::DataFrame grouped = df::GroupByAgg(filtered, 1, 2, 3, df::kAggSum);
  checksum_ = GroupChecksum(grouped);
}

void BirthAnalysis::RunMozart(mz::Runtime* rt) {
  mz::RuntimeScope scope(rt);
  mz::Future<df::DataFrame> grouped;
  {
    auto names = mzdf::ColFromFrame(births_, 0);
    auto lesl = mzdf::StrStartsWith(names, "Lesl");
    auto filtered = mzdf::FilterRows(births_, lesl);
    grouped = mzdf::GroupByAgg(filtered, 1, 2, 3, df::kAggSum);
  }
  checksum_ = GroupChecksum(grouped.get());
}

void BirthAnalysis::RunFused(int threads) {
  checksum_ = GroupChecksum(baselines::BirthAnalysisFused(births_, threads));
}

// ---- MovieLens ----

MovieLens::MovieLens(long num_ratings, std::uint64_t seed) {
  MovieLensTables tables =
      MakeMovieLens(num_ratings, /*num_users=*/num_ratings / 50 + 10,
                    /*num_movies=*/num_ratings / 100 + 10, seed);
  tables_.ratings = std::move(tables.ratings);
  tables_.users = std::move(tables.users);
  tables_.movies = std::move(tables.movies);
}

double MovieLens::DivisiveChecksum(const df::DataFrame& grouped) {
  // grouped: (movie, gender, sum, count) — mean rating gap per movie, summed.
  // Sort-independent: accumulate gender-signed means per movie.
  double acc = 0;
  for (long r = 0; r < grouped.num_rows(); ++r) {
    double movie = static_cast<double>(grouped.col(0).i64(r));
    double gender = static_cast<double>(grouped.col(1).i64(r));
    double mean = grouped.col("sum").d(r) / grouped.col("count").d(r);
    acc += (gender * 2.0 - 1.0) * mean * (movie + 1.0) * 1e-4;
  }
  return acc;
}

void MovieLens::RunBase() {
  df::DataFrame joined = df::HashJoin(tables_.ratings, tables_.users, 0, 0);
  df::DataFrame grouped = df::GroupByAgg(joined, 1, 3, 2, df::kAggMean);
  checksum_ = DivisiveChecksum(grouped);
}

void MovieLens::RunMozart(mz::Runtime* rt) {
  mz::RuntimeScope scope(rt);
  mz::Future<df::DataFrame> grouped;
  {
    auto joined = mzdf::HashJoin(tables_.ratings, tables_.users, 0, 0);
    grouped = mzdf::GroupByAgg(joined, 1, 3, 2, df::kAggMean);
  }
  checksum_ = DivisiveChecksum(grouped.get());
}

void MovieLens::RunFused(int threads) {
  checksum_ = DivisiveChecksum(baselines::MovieLensFused(tables_.ratings, tables_.users, threads));
}

// ---- Speech Tag ----

SpeechTag::SpeechTag(long docs, long mean_words, std::uint64_t seed)
    : corpus_(nlp::MakeSyntheticCorpus(docs, mean_words, seed)) {}

void SpeechTag::RunBase() { counts_ = nlp::CountPos(corpus_); }

void SpeechTag::RunMozart(mz::Runtime* rt) {
  mz::RuntimeScope scope(rt);
  counts_ = mznlp::CountPos(corpus_).get();
}

double SpeechTag::Checksum() const {
  double acc = static_cast<double>(counts_.tokens) + 0.5 * static_cast<double>(counts_.sentences);
  for (int i = 0; i < nlp::kNumTags; ++i) {
    acc += static_cast<double>(counts_.counts[static_cast<std::size_t>(i)]) * (i + 1);
  }
  return acc;
}

// ---- Image filters ----

ImageFilter::ImageFilter(Filter filter, long width, long height, std::uint64_t seed)
    : filter_(filter), width_(width), height_(height), seed_(seed) {
  ResetImage();
}

void ImageFilter::ResetImage() { image_ = img::MakeTestImage(width_, height_, seed_); }

int ImageFilter::NumOperators() const {
  return static_cast<int>(
      (filter_ == Filter::kNashville ? baselines::NashvilleRecipe() : baselines::GothamRecipe())
          .size());
}

namespace {

void RunRecipeBase(img::Image* image, std::span<const baselines::PointOp> recipe) {
  for (const baselines::PointOp& op : recipe) {
    using Kind = baselines::PointOp::Kind;
    switch (op.kind) {
      case Kind::kGamma:
        img::Gamma(image, op.p0);
        break;
      case Kind::kLevel:
        img::Level(image, op.p0, op.p1, op.p2);
        break;
      case Kind::kColorize:
        img::Colorize(image, op.rgb[0], op.rgb[1], op.rgb[2], op.p0);
        break;
      case Kind::kModulate:
        img::ModulateHSV(image, op.p0, op.p1, op.p2);
        break;
      case Kind::kSigmoidalContrast:
        img::SigmoidalContrast(image, op.p0, op.p1);
        break;
      case Kind::kBrightnessContrast:
        img::BrightnessContrast(image, op.p0, op.p1);
        break;
    }
  }
}

void RunRecipeMozart(img::Image* image, std::span<const baselines::PointOp> recipe) {
  for (const baselines::PointOp& op : recipe) {
    using Kind = baselines::PointOp::Kind;
    switch (op.kind) {
      case Kind::kGamma:
        mzimg::Gamma(image, op.p0);
        break;
      case Kind::kLevel:
        mzimg::Level(image, op.p0, op.p1, op.p2);
        break;
      case Kind::kColorize:
        mzimg::Colorize(image, op.rgb[0], op.rgb[1], op.rgb[2], op.p0);
        break;
      case Kind::kModulate:
        mzimg::ModulateHSV(image, op.p0, op.p1, op.p2);
        break;
      case Kind::kSigmoidalContrast:
        mzimg::SigmoidalContrast(image, op.p0, op.p1);
        break;
      case Kind::kBrightnessContrast:
        mzimg::BrightnessContrast(image, op.p0, op.p1);
        break;
    }
  }
}

}  // namespace

void ImageFilter::RunBase() {
  ResetImage();
  RunRecipeBase(&image_, filter_ == Filter::kNashville ? baselines::NashvilleRecipe()
                                                       : baselines::GothamRecipe());
}

void ImageFilter::RunMozart(mz::Runtime* rt) {
  ResetImage();
  mz::RuntimeScope scope(rt);
  RunRecipeMozart(&image_, filter_ == Filter::kNashville ? baselines::NashvilleRecipe()
                                                         : baselines::GothamRecipe());
  rt->Evaluate();
}

void ImageFilter::RunFused(int threads) {
  ResetImage();
  baselines::FusedPointPipeline(&image_, filter_ == Filter::kNashville
                                             ? baselines::NashvilleRecipe()
                                             : baselines::GothamRecipe(),
                                threads);
}

double ImageFilter::Checksum() const {
  double acc = 0;
  const long stride = 31;
  for (long y = 0; y < image_.height(); y += stride) {
    const std::uint8_t* p = image_.row(y);
    for (long x = 0; x < image_.width() * 3; x += 7) {
      acc += p[x];
    }
  }
  return acc;
}

}  // namespace workloads
