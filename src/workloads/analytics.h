// The Pandas (Data Cleaning, Crime Index, Birth Analysis, MovieLens), spaCy
// (Speech Tag), and ImageMagick (Nashville, Gotham) workloads of Table 2,
// each in base / Mozart / fused-baseline modes (see numerical.h for the mode
// conventions; spaCy has no compiler baseline, as in the paper).
#ifndef MOZART_WORKLOADS_ANALYTICS_H_
#define MOZART_WORKLOADS_ANALYTICS_H_

#include <cstdint>

#include "core/runtime.h"
#include "dataframe/dataframe.h"
#include "image/image.h"
#include "nlp/nlp.h"

namespace workloads {

// §8.2 Data Cleaning: normalize the 311 requests' zip column (strip hyphens,
// truncate ZIP+4, NaN out broken values), then count NaNs and sum the valid
// parsed zips. Result is (nan_count, valid_sum) folded into one checksum.
class DataCleaning {
 public:
  DataCleaning(long rows, std::uint64_t seed);
  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);
  double Checksum() const { return nan_count_ * 1e9 + valid_sum_; }
  long size() const { return requests_.num_rows(); }
  static int NumOperators() { return 8; }

 private:
  df::DataFrame requests_;
  double nan_count_ = 0;
  double valid_sum_ = 0;
};

// §8.2 Crime Index: filter big cities, compute a clipped crime index, and
// average it.
class CrimeIndex {
 public:
  CrimeIndex(long rows, std::uint64_t seed);
  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);
  double Checksum() const { return index_; }
  long size() const { return cities_.num_rows(); }
  static int NumOperators() { return 12; }

 private:
  df::DataFrame cities_;
  double index_ = 0;
};

// §8.2 Birth Analysis: fraction of "Lesl*" births by (year, gender).
class BirthAnalysis {
 public:
  BirthAnalysis(long rows, std::uint64_t seed);
  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);
  double Checksum() const { return checksum_; }
  long size() const { return births_.num_rows(); }
  static int NumOperators() { return 6; }

 private:
  static double GroupChecksum(const df::DataFrame& grouped);
  df::DataFrame births_;
  double checksum_ = 0;
};

// §8.2 MovieLens: join ratings with users, group mean rating by
// (movie, gender), report the most gender-divisive movies.
class MovieLens {
 public:
  MovieLens(long num_ratings, std::uint64_t seed);
  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);
  double Checksum() const { return checksum_; }
  long size() const { return tables_.ratings.num_rows(); }
  static int NumOperators() { return 8; }

 private:
  static double DivisiveChecksum(const df::DataFrame& grouped);
  struct MovieLensTablesHolder;
  // Generated tables (ratings/users/movies).
  struct Tables {
    df::DataFrame ratings;
    df::DataFrame users;
    df::DataFrame movies;
  } tables_;
  double checksum_ = 0;
};

// §8.2 Speech Tag: part-of-speech tagging over a synthetic review corpus.
// No compiler baseline existed for spaCy in the paper; RunFused is absent.
class SpeechTag {
 public:
  SpeechTag(long docs, long mean_words, std::uint64_t seed);
  void RunBase();
  void RunMozart(mz::Runtime* rt);
  double Checksum() const;
  long size() const { return corpus_.size(); }
  static int NumOperators() { return 2; }

 private:
  nlp::Corpus corpus_;
  nlp::PosCounts counts_;
};

// §8.2 Nashville / Gotham: Instagram-style filter pipelines.
class ImageFilter {
 public:
  enum class Filter { kNashville, kGotham };
  ImageFilter(Filter filter, long width, long height, std::uint64_t seed);
  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);
  double Checksum() const;
  long size() const { return image_.height(); }
  int NumOperators() const;

 private:
  void ResetImage();
  Filter filter_;
  long width_;
  long height_;
  std::uint64_t seed_;
  img::Image image_;
};

}  // namespace workloads

#endif  // MOZART_WORKLOADS_ANALYTICS_H_
