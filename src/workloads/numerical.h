// The four numerical workloads of Table 2 (Black Scholes, Haversine, nBody,
// Shallow Water), each in three modes:
//
//   RunBase()   — unmodified library calls (vecmath / matrix). With the
//                 library's internal threading set to 1 this is the "NumPy"
//                 baseline of Fig. 4a–d; with it set to N it is the "MKL"
//                 baseline of Fig. 4j–m.
//   RunMozart() — the same call sequence through the annotated wrappers,
//                 split + pipelined + parallelized by the given runtime.
//   RunFused()  — the hand-fused compiler stand-in (baselines/fused.h).
//
// Every mode computes the same math; Checksum() lets tests and benches
// verify cross-mode agreement. Operator counts mirror Table 2's per-workload
// API-call counts (32 / 18 / 38 / 32 in the paper; ours are of the same
// order).
#ifndef MOZART_WORKLOADS_NUMERICAL_H_
#define MOZART_WORKLOADS_NUMERICAL_H_

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "core/runtime.h"
#include "matrix/matrix.h"

namespace workloads {

class BlackScholes {
 public:
  BlackScholes(long n, std::uint64_t seed);

  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);

  double Checksum() const;
  long size() const { return n_; }
  static int NumOperators() { return 30; }

 private:
  template <typename Api>
  void RunWithApi(const Api& api);

  long n_;
  double rate_ = 0.02;
  double vol_ = 0.30;
  mz::AlignedBuffer<double> price_, strike_, tte_;
  mz::AlignedBuffer<double> call_, put_;
  mz::AlignedBuffer<double> d1_, d2_, nd1_, nd2_, disc_, vol_sqrt_, tmp_;
};

class Haversine {
 public:
  Haversine(long n, std::uint64_t seed);

  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);

  double Checksum() const;
  long size() const { return n_; }
  static int NumOperators() { return 15; }

 private:
  template <typename Api>
  void RunWithApi(const Api& api);

  long n_;
  double lat0_, lon0_;
  mz::AlignedBuffer<double> lat_, lon_, dist_;
  mz::AlignedBuffer<double> a1_, a2_, coslat_;
};

class NBody {
 public:
  NBody(long bodies, int steps, std::uint64_t seed);

  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);

  double Checksum() const;
  long size() const { return n_; }
  static int NumOperators() { return 22; }  // per step

 private:
  void Reset(std::uint64_t seed);

  long n_;
  int steps_;
  double dt_ = 0.01;
  double softening_ = 0.1;
  std::uint64_t seed_;
  std::vector<double> x_, y_, z_, vx_, vy_, vz_;
  matrix::Matrix dx_, dy_, dz_, t1_, t2_, t3_;
};

class ShallowWater {
 public:
  ShallowWater(long grid, int steps, std::uint64_t seed);

  void RunBase();
  void RunMozart(mz::Runtime* rt);
  void RunFused(int threads);

  double Checksum() const;
  long size() const { return grid_; }
  static int NumOperators() { return 20; }  // per step (8 rolls + 12 elementwise)

 private:
  void Reset(std::uint64_t seed);

  long grid_;
  int steps_;
  double dt_ = 0.001;
  double dx_ = 1.0;
  double g_ = 9.8;
  std::uint64_t seed_;
  matrix::Matrix h_, u_, v_, h2_, u2_, v2_;
  matrix::Matrix ra_, rb_, dudx_, dvdy_, dhdx_, dhdy_, div_;
};

}  // namespace workloads

#endif  // MOZART_WORKLOADS_NUMERICAL_H_
