#include "common/fault.h"

#include <chrono>
#include <thread>

namespace mz {
namespace {

// SplitMix64: decorrelates (seed, site-hash, index) into an iid-looking
// 64-bit draw. Chosen over a stateful RNG so the decision for hit k of a
// site is a pure function — no cross-thread RNG state to race on.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashSite(const char* site) {
  // FNV-1a over the site name.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 1099511628211ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const FaultConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_ = cfg;
  site_hits_.clear();
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() { enabled_.store(false, std::memory_order_relaxed); }

void FaultInjector::Hit(const char* site) {
  bool do_throw = false;
  bool do_delay = false;
  std::int64_t delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) {
      return;  // raced with Disarm; injection is best-effort off
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t index = site_hits_[site]++;
    if (!cfg_.only_site.empty() && cfg_.only_site != site) {
      return;
    }
    if (cfg_.max_fires >= 0 && fires_.load(std::memory_order_relaxed) >= cfg_.max_fires) {
      return;
    }
    const std::uint64_t draw =
        Mix(cfg_.seed ^ Mix(HashSite(site) + static_cast<std::uint64_t>(index)));
    // Split one draw into two uniform [0,1) coordinates.
    const double u_throw = static_cast<double>(draw >> 40) / static_cast<double>(1 << 24);
    const double u_delay =
        static_cast<double>((draw >> 16) & 0xffffffULL) / static_cast<double>(1 << 24);
    if (u_throw < cfg_.p_throw) {
      do_throw = true;
    } else if (u_delay < cfg_.p_delay) {
      do_delay = true;
      delay_us = cfg_.delay_us;
    }
    if (do_throw || do_delay) {
      fires_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (do_delay && delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  if (do_throw) {
    throw FaultInjected(std::string("injected fault at site ") + site);
  }
}

std::vector<std::pair<std::string, std::int64_t>> FaultInjector::sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {site_hits_.begin(), site_hits_.end()};
}

}  // namespace mz
