// Invariant checking and error reporting for the Mozart runtime.
//
// Two failure channels, per the repo style:
//  * `mz::Error` (exception) for conditions a caller can provoke through the
//    public API (bad annotations, mismatched splits in pedantic mode, ...).
//  * `MZ_CHECK` for internal invariants whose violation is a bug; these abort
//    with a source location so failures in worker threads are loud.
#ifndef MOZART_COMMON_CHECK_H_
#define MOZART_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mz {

// Exception thrown for user-visible misuse of the Mozart API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

// Stream-style message builder so call sites can write
// `MZ_THROW("bad axis " << axis)`.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "MZ_CHECK failed: %s at %s:%d %s\n", expr, file, line, msg.c_str());
  std::abort();
}

}  // namespace internal

#define MZ_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::mz::internal::CheckFailed(#cond, __FILE__, __LINE__, "");             \
    }                                                                         \
  } while (0)

#define MZ_CHECK_MSG(cond, msg)                                               \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::mz::internal::CheckFailed(#cond, __FILE__, __LINE__,                  \
                                  (::mz::internal::MessageStream() << msg).str()); \
    }                                                                         \
  } while (0)

#define MZ_THROW(msg) \
  throw ::mz::Error((::mz::internal::MessageStream() << msg).str())

#define MZ_THROW_IF(cond, msg) \
  do {                         \
    if (cond) {                \
      MZ_THROW(msg);           \
    }                          \
  } while (0)

}  // namespace mz

#endif  // MOZART_COMMON_CHECK_H_
