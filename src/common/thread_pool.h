// Fixed-size thread pool.
//
// Three users:
//  * the vecmath/matrix substrates run their *internal* parallel mode on a
//    pool (standing in for MKL's TBB-backed threading),
//  * Mozart's executor dispatches one task per worker per stage (the paper
//    uses static parallelism, §5.2), and
//  * the serving layer (core/session.h) shares ONE pool between many
//    concurrent sessions: RunOnAllWorkers is safe to call from multiple
//    threads at once — each call carries its own completion barrier, so
//    concurrent submissions interleave through the queue and each caller
//    blocks only on its own tasks. Admission control (core/admission.h)
//    bounds how many evaluations pile onto the queue, not correctness.
//
// ParallelFor partitions [0, n) into contiguous chunks, one per worker, which
// matches the static partitioning Mozart uses for split ranges.
#ifndef MOZART_COMMON_THREAD_POOL_H_
#define MOZART_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mz {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Runs fn(worker_index) on every worker and blocks until all return.
  // Worker 0 runs on the calling thread so a 1-thread pool has no handoff
  // cost and thread-count sweeps degrade gracefully.
  void RunOnAllWorkers(const std::function<void(int)>& fn);

  // Same, but on only `width` workers (clamped to [1, num_threads()]):
  // fn(0) on the calling thread plus width-1 queued tasks. Lets narrow work
  // (e.g. a small batch of serial jobs, core/batch.h) avoid waking the
  // whole pool.
  void RunOnWorkers(int width, const std::function<void(int)>& fn);

  // Statically partitions [begin, end) into one contiguous range per worker
  // and runs fn(range_begin, range_end) in parallel. Ranges may be empty.
  //
  // Composability: when called from inside any pool worker (this pool or
  // another), the loop runs inline on the calling thread. This is how nested
  // parallelism composes (TBB-style): a library's internal ParallelFor under
  // a Mozart executor worker degrades to serial instead of thrashing two
  // schedulers against each other.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

  // True on threads currently executing pool work (any pool).
  static bool InWorker();

  // Introspection for benches and the serving layer's admission tuning:
  // total RunOnAllWorkers dispatches and the current queue depth.
  std::int64_t dispatches() const { return dispatches_.load(std::memory_order_relaxed); }
  std::size_t queue_depth() const;

 private:
  struct Task {
    std::function<void(int)> fn;
    int worker_index = 0;
    std::shared_ptr<struct Barrier> barrier;
  };

  void WorkerLoop();

  std::vector<std::thread> threads_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<Task> queue_;
  bool shutdown_ = false;
  std::atomic<std::int64_t> dispatches_{0};
};

// Returns a process-wide pool sized to the machine (used as the default by
// substrates when the caller does not pass one).
ThreadPool& GlobalPool();

}  // namespace mz

#endif  // MOZART_COMMON_THREAD_POOL_H_
