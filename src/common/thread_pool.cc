#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"
#include "common/cpu.h"

namespace mz {
namespace {

thread_local bool tls_in_pool_worker = false;

// RAII marker for "this thread is running pool work".
struct WorkerMark {
  bool previous;
  WorkerMark() : previous(tls_in_pool_worker) { tls_in_pool_worker = true; }
  ~WorkerMark() { tls_in_pool_worker = previous; }
};

}  // namespace

// Completion barrier shared by the tasks of one RunOnAllWorkers call.
struct Barrier {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;

  void Arrive() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) {
      cv.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

ThreadPool::ThreadPool(int num_threads) {
  MZ_CHECK_MSG(num_threads >= 1, "thread pool needs at least one thread");
  // Worker 0 is the calling thread; spawn the rest.
  threads_.reserve(static_cast<std::size_t>(num_threads));
  threads_.emplace_back();  // placeholder slot for the inline worker 0
  for (int i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    {
      WorkerMark mark;
      task.fn(task.worker_index);
    }
    task.barrier->Arrive();
  }
}

bool ThreadPool::InWorker() { return tls_in_pool_worker; }

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::RunOnAllWorkers(const std::function<void(int)>& fn) {
  RunOnWorkers(num_threads(), fn);
}

void ThreadPool::RunOnWorkers(int width, const std::function<void(int)>& fn) {
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  int n = std::clamp(width, 1, num_threads());
  if (n == 1) {
    WorkerMark mark;
    fn(0);
    return;
  }
  auto barrier = std::make_shared<Barrier>();
  barrier->pending = n - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 1; i < n; ++i) {
      queue_.push(Task{fn, i, barrier});
    }
  }
  if (n == num_threads()) {
    cv_.notify_all();
  } else {
    for (int i = 1; i < n; ++i) {
      cv_.notify_one();  // wake only as many sleepers as there are tasks
    }
  }
  {
    WorkerMark mark;
    fn(0);
  }
  barrier->Wait();
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t, std::int64_t)>& fn) {
  std::int64_t total = std::max<std::int64_t>(0, end - begin);
  if (total == 0) {
    return;
  }
  if (InWorker()) {
    fn(begin, end);  // nested: run inline (composable parallelism)
    return;
  }
  std::int64_t n = num_threads();
  std::int64_t chunk = (total + n - 1) / n;
  RunOnAllWorkers([&](int worker) {
    std::int64_t lo = begin + chunk * worker;
    std::int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) {
      fn(lo, hi);
    }
  });
}

ThreadPool& GlobalPool() {
  static ThreadPool* pool = new ThreadPool(NumLogicalCpus());
  return *pool;
}

}  // namespace mz
