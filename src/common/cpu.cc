#include "common/cpu.h"

#include <unistd.h>

#include <fstream>
#include <string>
#include <thread>

namespace mz {
namespace {

// Parses sysfs cache size strings such as "256K" or "8192K" or "1M".
std::size_t ParseCacheSize(const std::string& text) {
  if (text.empty()) {
    return 0;
  }
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K' || text[i] == 'k') {
      value *= 1024;
    } else if (text[i] == 'M' || text[i] == 'm') {
      value *= 1024 * 1024;
    }
  }
  return value;
}

// Reads /sys/devices/system/cpu/cpu0/cache/index*/ looking for the requested
// level; returns 0 when not found.
std::size_t SysfsCacheBytes(int want_level) {
  for (int index = 0; index < 8; ++index) {
    std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index) + "/";
    std::ifstream level_file(base + "level");
    if (!level_file.good()) {
      continue;
    }
    int level = 0;
    level_file >> level;
    if (level != want_level) {
      continue;
    }
    // Skip pure-instruction caches.
    std::ifstream type_file(base + "type");
    std::string type;
    type_file >> type;
    if (type == "Instruction") {
      continue;
    }
    std::ifstream size_file(base + "size");
    std::string size_text;
    size_file >> size_text;
    std::size_t bytes = ParseCacheSize(size_text);
    if (bytes > 0) {
      return bytes;
    }
  }
  return 0;
}

}  // namespace

int NumLogicalCpus() {
  // Cached: this sits on the hot path of every library-internal parallel
  // dispatch, and hardware_concurrency() costs a syscall on glibc.
  static const int cached = [] {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) {
      long n = ::sysconf(_SC_NPROCESSORS_ONLN);
      hw = n > 0 ? static_cast<unsigned>(n) : 1u;
    }
    return static_cast<int>(hw);
  }();
  return cached;
}

std::size_t L2CacheBytes() {
  static const std::size_t cached = [] {
    std::size_t bytes = SysfsCacheBytes(2);
#ifdef _SC_LEVEL2_CACHE_SIZE
    if (bytes == 0) {
      long v = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
      if (v > 0) {
        bytes = static_cast<std::size_t>(v);
      }
    }
#endif
    if (bytes == 0) {
      bytes = 256 * 1024;
    }
    return bytes;
  }();
  return cached;
}

std::size_t LlcBytes() {
  static const std::size_t cached = [] {
    std::size_t bytes = SysfsCacheBytes(3);
#ifdef _SC_LEVEL3_CACHE_SIZE
    if (bytes == 0) {
      long v = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
      if (v > 0) {
        bytes = static_cast<std::size_t>(v);
      }
    }
#endif
    if (bytes == 0) {
      bytes = 8 * 1024 * 1024;
    }
    return bytes;
  }();
  return cached;
}

std::size_t CacheLineBytes() {
  static const std::size_t cached = [] {
    std::size_t bytes = 0;
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
    long v = ::sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
    if (v > 0) {
      bytes = static_cast<std::size_t>(v);
    }
#endif
    if (bytes == 0) {
      bytes = 64;
    }
    return bytes;
  }();
  return cached;
}

}  // namespace mz
