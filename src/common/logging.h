// Minimal leveled logger. Level is read once from the MOZART_LOG environment
// variable ("off", "error", "info", "debug", "trace"); default is "error".
// The paper's runtime logs each function call on each split piece when
// configured to do so (§7.1) — that is the "trace" level here.
#ifndef MOZART_COMMON_LOGGING_H_
#define MOZART_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mz {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

// Current global log level (from MOZART_LOG, cached on first use).
LogLevel GetLogLevel();

// Overrides the global log level (used by tests and the pedantic runtime).
void SetLogLevel(LogLevel level);

// Emits one formatted line to stderr; thread-safe (single write call).
void LogLine(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MZ_LOG(level)                                  \
  if (::mz::GetLogLevel() >= ::mz::LogLevel::k##level) \
  ::mz::internal::LogMessage(::mz::LogLevel::k##level)

}  // namespace mz

#endif  // MOZART_COMMON_LOGGING_H_
