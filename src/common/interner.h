// String interner. Split-type names are interned to small integer ids so that
// split-type equality tests in the planner are integer compares, and so the
// registry can key (split type, C++ type) pairs cheaply.
#ifndef MOZART_COMMON_INTERNER_H_
#define MOZART_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mz {

using InternedId = std::uint32_t;

// Thread-safe append-only interner. Ids are dense and stable for the lifetime
// of the process.
class Interner {
 public:
  static Interner& Global();

  InternedId Intern(std::string_view name);

  // Looks up the string for an id; aborts on out-of-range ids. The returned
  // reference stays valid (and its contents immutable) for the process
  // lifetime even while other threads intern new names — names_ is a deque
  // precisely so growth never relocates existing strings.
  const std::string& Name(InternedId id) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, InternedId> ids_;
  std::deque<std::string> names_;
};

// Convenience wrappers over the global interner.
InternedId InternName(std::string_view name);
const std::string& InternedName(InternedId id);

}  // namespace mz

#endif  // MOZART_COMMON_INTERNER_H_
