// Deterministic random-number generation for workload data generators and
// property tests. SplitMix64 is tiny, fast, and reproducible across platforms,
// which matters because every benchmark in this repo must generate identical
// synthetic datasets run-to-run.
#ifndef MOZART_COMMON_RNG_H_
#define MOZART_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace mz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) { return NextU64() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform int64 in [lo, hi].
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Lower-case ASCII string of the given length.
  std::string NextWord(int length) {
    std::string word(static_cast<std::size_t>(length), 'a');
    for (char& c : word) {
      c = static_cast<char>('a' + NextBounded(26));
    }
    return word;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mz

#endif  // MOZART_COMMON_RNG_H_
