#include "common/interner.h"

#include "common/check.h"

namespace mz {

Interner& Interner::Global() {
  static Interner* interner = new Interner();
  return *interner;
}

InternedId Interner::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  InternedId id = static_cast<InternedId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string(name), id);
  return id;
}

const std::string& Interner::Name(InternedId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  MZ_CHECK_MSG(id < names_.size(), "unknown interned id " << id);
  return names_[id];
}

InternedId InternName(std::string_view name) { return Interner::Global().Intern(name); }

const std::string& InternedName(InternedId id) { return Interner::Global().Name(id); }

}  // namespace mz
