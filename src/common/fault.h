// Deterministic fault injection for robustness testing.
//
// MZ_FAULT(site) marks a named injection point. Sites are compiled into the
// production paths the chaos battery exercises — admission, the executor's
// batch/split/merge loops, plan-cache lookups, batch dispatch, stream chunk
// handling — and cost a single relaxed atomic load plus a never-taken branch
// when the injector is disarmed (the default), so shipping them is free.
//
// When armed (FaultInjector::Global().Arm(cfg)), every hit of a site draws
// from a counter-keyed hash of (seed, site, per-site hit index) and fires a
// throw (FaultInjected, an mz::Error subclass so the runtime's user-error
// unwind paths handle it) or a delay with the configured probabilities. The
// decision depends only on the seed and the per-site hit index — not on
// thread scheduling — so the *set* of firing (site, index) pairs is
// reproducible run to run even though which worker thread observes a given
// index is not. Tests assert invariants (no leaked tokens, no stuck
// waiters, clean retry), which that level of determinism pins down.
#ifndef MOZART_COMMON_FAULT_H_
#define MOZART_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.h"

namespace mz {

// Thrown by a firing injection point. Subclasses mz::Error deliberately:
// injected faults must travel the same unwind paths user-provoked errors do.
class FaultInjected : public Error {
 public:
  explicit FaultInjected(const std::string& what) : Error(what) {}
};

struct FaultConfig {
  std::uint64_t seed = 1;
  double p_throw = 0.0;        // per-hit probability of throwing FaultInjected
  double p_delay = 0.0;        // per-hit probability of sleeping delay_us
  std::int64_t delay_us = 50;  // length of an injected delay
  // Restrict injection to one site name ("" = all sites). Non-matching
  // sites still count hits (the catalogue in sites() stays complete).
  std::string only_site;
  // Stop firing after this many injections (-1 = unbounded). Bounds a chaos
  // run's failure count without disarming mid-flight.
  std::int64_t max_fires = -1;
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  // Enables injection with a fresh per-site counter table. Thread-safe, but
  // meant to be called from a quiescent test harness, not concurrently with
  // itself.
  void Arm(const FaultConfig& cfg);
  // Disables injection. Counters are preserved for inspection until the
  // next Arm().
  void Disarm();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Called by MZ_FAULT when enabled; decides deterministically whether this
  // (site, hit-index) fires. May throw FaultInjected or sleep.
  void Hit(const char* site);

  // Introspection: total site hits / injections fired since the last Arm().
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  // Every site name observed since the last Arm() (the fault-site catalogue
  // a chaos sweep actually covered), with hit counts.
  std::vector<std::pair<std::string, std::int64_t>> sites() const;

 private:
  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> fires_{0};
  mutable std::mutex mu_;
  FaultConfig cfg_;
  std::map<std::string, std::int64_t> site_hits_;
};

// Zero-cost when disarmed: one relaxed load on the (cold, shared) enabled
// flag. The [[unlikely]] keeps the armed path out of line.
#define MZ_FAULT(site)                                       \
  do {                                                       \
    if (::mz::FaultInjector::Global().enabled()) [[unlikely]] { \
      ::mz::FaultInjector::Global().Hit(site);               \
    }                                                        \
  } while (0)

}  // namespace mz

#endif  // MOZART_COMMON_FAULT_H_
