// Per-request deadlines and cooperative cancellation.
//
// A CancelSource owns one request's lifecycle state (an explicit Cancel()
// flag plus an optional absolute deadline); CancelTokens are cheap copyable
// views of it that the serving layers thread down through admission, the
// batch collector, the executor, and streaming. Cancellation is strictly
// cooperative: holders poll `stop_requested()` at natural boundaries
// (admission waits, batch/stage boundaries, between stream firings) and
// unwind by throwing — nothing is ever interrupted mid-kernel, so user
// buffers a stage already wrote stay in a re-runnable state (elementwise
// stages overwrite on retry).
//
// Three structured error types make the outcome machine-readable:
//  * CancelledError  — the client called CancelSource::Cancel().
//  * DeadlineError   — the request's deadline passed (a subtype of
//    cancellation: both mean "stop working on this request").
//  * OverloadError   — the request was never started: admission predicted
//    the deadline cannot be met at the current backlog (load shedding), a
//    per-tenant rate or byte quota was exhausted, the serving context is
//    draining, or (client-side, resilience.h) the tenant's circuit breaker
//    is open. Carries retry_after_us, the backpressure hint clients use to
//    pace retries.
#ifndef MOZART_COMMON_CANCEL_H_
#define MOZART_COMMON_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/timer.h"

namespace mz {

// Thrown when a request is cancelled via CancelSource::Cancel().
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

// Thrown when a request's deadline passes before (or during) execution.
class DeadlineError : public CancelledError {
 public:
  explicit DeadlineError(const std::string& what) : CancelledError(what) {}
};

// Thrown when a request is rejected up front instead of queued: the gate's
// backlog already exceeds the deadline (kBacklog), the tenant's rate or
// byte quota is exhausted (kQuota), the serving context is draining and no
// longer admits new work (kDraining), or the client-side circuit breaker is
// failing fast (kCircuit; thrown as CircuitOpenError by resilience.h, never
// by the server). retry_after_us is the estimate of when a retry could
// succeed — the structured backpressure signal (kDraining carries 0: a
// draining context never comes back).
class OverloadError : public Error {
 public:
  enum class Kind { kBacklog, kQuota, kDraining, kCircuit };

  OverloadError(const std::string& what, Kind k, std::int64_t retry_us)
      : Error(what), kind(k), retry_after_us(retry_us) {}

  Kind kind;
  std::int64_t retry_after_us;
};

class CancelToken;

// Owner side of one request's cancellation state.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<State>()) {}

  // Requests cooperative cancellation. Idempotent, thread-safe; holders
  // observe it at their next boundary check.
  void Cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  // Absolute deadline on the NowNanos() (steady) clock; 0 clears it.
  void SetDeadlineNanos(std::int64_t deadline_ns) {
    state_->deadline_ns.store(deadline_ns, std::memory_order_relaxed);
  }
  // Convenience: deadline `us` microseconds from now.
  void SetDeadlineAfterMicros(std::int64_t us) { SetDeadlineNanos(NowNanos() + us * 1000); }

  CancelToken token() const;

 private:
  friend class CancelToken;
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> deadline_ns{0};  // 0 = none
  };
  std::shared_ptr<State> state_;
};

// Read-only view. A default-constructed token is inert: never cancelled, no
// deadline, and every check short-circuits on a null pointer — threading a
// token through a layer costs nothing for requests that don't use one.
class CancelToken {
 public:
  CancelToken() = default;

  bool has_state() const { return state_ != nullptr; }
  bool cancelled() const {
    return state_ != nullptr && state_->cancelled.load(std::memory_order_relaxed);
  }
  // 0 = no deadline.
  std::int64_t deadline_ns() const {
    return state_ != nullptr ? state_->deadline_ns.load(std::memory_order_relaxed) : 0;
  }
  bool expired(std::int64_t now_ns) const {
    const std::int64_t d = deadline_ns();
    return d > 0 && now_ns >= d;
  }
  // True once the holder should stop working on this request. Reads the
  // clock only when a deadline is actually set.
  bool stop_requested() const {
    if (state_ == nullptr) {
      return false;
    }
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      return true;
    }
    const std::int64_t d = state_->deadline_ns.load(std::memory_order_relaxed);
    return d > 0 && NowNanos() >= d;
  }

  // Boundary check: throws CancelledError / DeadlineError with `where` in
  // the message. No-op for inert tokens.
  void ThrowIfStopped(const char* where) const {
    if (state_ == nullptr) {
      return;
    }
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      throw CancelledError(std::string("request cancelled at ") + where);
    }
    const std::int64_t d = state_->deadline_ns.load(std::memory_order_relaxed);
    if (d > 0 && NowNanos() >= d) {
      throw DeadlineError(std::string("deadline exceeded at ") + where);
    }
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<CancelSource::State> state) : state_(std::move(state)) {}
  std::shared_ptr<CancelSource::State> state_;
};

inline CancelToken CancelSource::token() const { return CancelToken(state_); }

}  // namespace mz

#endif  // MOZART_COMMON_CANCEL_H_
