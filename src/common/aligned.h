// Cache-line-aligned heap buffers. The vector-math substrate (our MKL
// stand-in) assumes 64-byte alignment so the compiler can emit aligned SIMD
// loads, and Mozart's executor allocates split scratch buffers through this
// type as well.
#ifndef MOZART_COMMON_ALIGNED_H_
#define MOZART_COMMON_ALIGNED_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/check.h"

namespace mz {

inline constexpr std::size_t kBufferAlignment = 64;

// Cache-set coloring: successive large allocations are offset from their
// page-aligned base by increasing multiples of 8 KiB. Without this, a
// workload's operand arrays (often equal power-of-two sizes → identically
// aligned mmap regions) land on the *same* L1/L2 sets, and the cache-resident
// slices Mozart pipelines conflict-evict each other — set-associativity
// thrash that can triple runtimes. Production allocators (TBB's, jemalloc)
// stagger bases the same way.
inline constexpr std::size_t kColorStrideBytes = 8 * 1024;
inline constexpr std::size_t kNumColors = 16;

namespace internal {
inline std::size_t NextColorOffset() {
  static std::atomic<std::size_t> counter{0};
  return (counter.fetch_add(1, std::memory_order_relaxed) % kNumColors) * kColorStrideBytes;
}
}  // namespace internal

// Owning, aligned, fixed-size array of trivially-destructible T.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { Allocate(count); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : base_(std::exchange(other.base_, nullptr)),
        data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      base_ = std::exchange(other.base_, nullptr);
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + count_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + count_; }

  void Fill(const T& value) {
    for (std::size_t i = 0; i < count_; ++i) {
      data_[i] = value;
    }
  }

 private:
  void Allocate(std::size_t count) {
    count_ = count;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    std::size_t color = internal::NextColorOffset();
    std::size_t bytes = (count * sizeof(T) + kBufferAlignment - 1) / kBufferAlignment *
                            kBufferAlignment +
                        color;
    void* p = std::aligned_alloc(kBufferAlignment, bytes);
    if (p == nullptr) {
      throw std::bad_alloc();
    }
    base_ = p;
    data_ = reinterpret_cast<T*>(static_cast<char*>(p) + color);
  }

  void Release() {
    std::free(base_);
    base_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }

  void* base_ = nullptr;  // allocation start (data_ is color-offset into it)
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace mz

#endif  // MOZART_COMMON_ALIGNED_H_
