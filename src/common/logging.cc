#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mz {
namespace {

LogLevel ParseLevel(const char* s) {
  if (s == nullptr) {
    return LogLevel::kError;
  }
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kError;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "OFF";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
  }
  return "?";
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(ParseLevel(std::getenv("MOZART_LOG")))};
  return level;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStore().load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogLine(LogLevel level, const std::string& message) {
  std::string line = std::string("[mozart ") + LevelName(level) + "] " + message + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace mz
