// CPU topology and cache-size discovery.
//
// Mozart's batch-size heuristic (§5.2 of the paper) needs the L2 cache size:
// each pipeline batch should collectively occupy roughly one L2 cache. We read
// the Linux sysfs cache hierarchy and fall back to sysconf / a conservative
// constant when the information is unavailable (containers often hide sysfs).
#ifndef MOZART_COMMON_CPU_H_
#define MOZART_COMMON_CPU_H_

#include <cstddef>
#include <cstdint>

namespace mz {

// Number of online logical CPUs (>= 1).
int NumLogicalCpus();

// Private L2 data-cache size in bytes for cpu0. Falls back to 256 KiB.
std::size_t L2CacheBytes();

// Shared last-level-cache size in bytes. Falls back to 8 MiB.
std::size_t LlcBytes();

// Cache line size in bytes. Falls back to 64.
std::size_t CacheLineBytes();

}  // namespace mz

#endif  // MOZART_COMMON_CPU_H_
