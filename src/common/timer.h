// Wall-clock timing helpers used by the runtime's phase accounting (Fig. 5
// reproduces the client/unprotect/planner/split/task/merge breakdown) and by
// the benchmark harnesses.
#ifndef MOZART_COMMON_TIMER_H_
#define MOZART_COMMON_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mz {

// Monotonic nanosecond timestamp.
inline std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Simple start/stop wall timer.
class WallTimer {
 public:
  WallTimer() : start_(NowNanos()) {}
  void Reset() { start_ = NowNanos(); }
  std::int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) * 1e-9; }

 private:
  std::int64_t start_;
};

// Accumulates elapsed time into an atomic counter on destruction. Safe to use
// concurrently from worker threads (each adds its own elapsed time).
class ScopedAccumTimer {
 public:
  explicit ScopedAccumTimer(std::atomic<std::int64_t>* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedAccumTimer() {
    if (sink_ != nullptr) {
      sink_->fetch_add(NowNanos() - start_, std::memory_order_relaxed);
    }
  }
  ScopedAccumTimer(const ScopedAccumTimer&) = delete;
  ScopedAccumTimer& operator=(const ScopedAccumTimer&) = delete;

 private:
  std::atomic<std::int64_t>* sink_;
  std::int64_t start_;
};

}  // namespace mz

#endif  // MOZART_COMMON_TIMER_H_
