#include "vecmath/vecmath.h"

#include <atomic>
#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/cpu.h"
#include "common/thread_pool.h"

namespace vecmath {
namespace {

std::atomic<int> g_num_threads{0};  // 0 = hardware concurrency

int EffectiveThreads() {
  int t = g_num_threads.load(std::memory_order_relaxed);
  return t > 0 ? t : mz::NumLogicalCpus();
}

// Library-internal pool (stand-in for MKL's TBB arena). Sized to the
// machine; SetNumThreads caps how many workers a call may use.
mz::ThreadPool& Pool() { return mz::GlobalPool(); }

bool ShouldParallelize(long n) { return EffectiveThreads() > 1 && n >= kParallelGrain; }

// Runs fn over [0, n) — serially, or statically partitioned across the
// library pool. fn must be pure element-wise over its range.
template <typename LoopBody>
void Dispatch(long n, LoopBody body) {
  if (!ShouldParallelize(n)) {
    body(0, n);
    return;
  }
  int threads = EffectiveThreads();
  long chunk = (n + threads - 1) / threads;
  Pool().ParallelFor(0, threads, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      long lo = static_cast<long>(t) * chunk;
      long hi = lo + chunk < n ? lo + chunk : n;
      if (lo < hi) {
        body(lo, hi);
      }
    }
  });
}

template <typename F>
void MapUnary(long n, const double* a, double* out, F f) {
  Dispatch(n, [=](long lo, long hi) {
    const double* __restrict pa = a;
    double* __restrict po = out;
    for (long i = lo; i < hi; ++i) {
      po[i] = f(pa[i]);
    }
  });
}

template <typename F>
void MapBinary(long n, const double* a, const double* b, double* out, F f) {
  Dispatch(n, [=](long lo, long hi) {
    const double* __restrict pa = a;
    const double* __restrict pb = b;
    double* __restrict po = out;
    for (long i = lo; i < hi; ++i) {
      po[i] = f(pa[i], pb[i]);
    }
  });
}

// Parallel tree reduction: each worker folds its range, partials are folded
// on the caller.
template <typename F>
double Reduce(long n, const double* a, double init, F f) {
  if (!ShouldParallelize(n)) {
    double acc = init;
    for (long i = 0; i < n; ++i) {
      acc = f(acc, a[i]);
    }
    return acc;
  }
  int threads = EffectiveThreads();
  long chunk = (n + threads - 1) / threads;
  std::vector<double> partials(static_cast<std::size_t>(threads), init);
  Pool().ParallelFor(0, threads, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      long lo = static_cast<long>(t) * chunk;
      long hi = lo + chunk < n ? lo + chunk : n;
      double acc = init;
      for (long i = lo; i < hi; ++i) {
        acc = f(acc, a[i]);
      }
      partials[static_cast<std::size_t>(t)] = acc;
    }
  });
  double acc = init;
  for (double p : partials) {
    acc = f(acc, p);
  }
  return acc;
}

}  // namespace

void SetNumThreads(int threads) {
  MZ_CHECK_MSG(threads >= 0, "SetNumThreads requires a non-negative count");
  g_num_threads.store(threads, std::memory_order_relaxed);
}

int GetNumThreads() { return EffectiveThreads(); }

void Sqrt(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::sqrt(x); });
}
void Exp(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::exp(x); });
}
void Log(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::log(x); });
}
void Log1p(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::log1p(x); });
}
void Erf(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::erf(x); });
}
void Sin(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::sin(x); });
}
void Cos(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::cos(x); });
}
void Tan(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::tan(x); });
}
void Asin(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::asin(x); });
}
void Acos(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::acos(x); });
}
void Atan(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::atan(x); });
}
void Abs(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::fabs(x); });
}
void Neg(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return -x; });
}
void Inv(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return 1.0 / x; });
}
void Sqr(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return x * x; });
}
void Floor(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::floor(x); });
}
void Ceil(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return std::ceil(x); });
}

void Add(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x + y; });
}
void Sub(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x - y; });
}
void Mul(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x * y; });
}
void Div(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x / y; });
}
void Pow(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return std::pow(x, y); });
}
void Atan2(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return std::atan2(x, y); });
}
void Hypot(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return std::hypot(x, y); });
}
void Max(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x > y ? x : y; });
}
void Min(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x < y ? x : y; });
}

void AddC(long n, const double* a, double c, double* out) {
  MapUnary(n, a, out, [c](double x) { return x + c; });
}
void SubC(long n, const double* a, double c, double* out) {
  MapUnary(n, a, out, [c](double x) { return x - c; });
}
void MulC(long n, const double* a, double c, double* out) {
  MapUnary(n, a, out, [c](double x) { return x * c; });
}
void DivC(long n, const double* a, double c, double* out) {
  MapUnary(n, a, out, [c](double x) { return x / c; });
}
void RSubC(long n, const double* a, double c, double* out) {
  MapUnary(n, a, out, [c](double x) { return c - x; });
}
void RDivC(long n, const double* a, double c, double* out) {
  MapUnary(n, a, out, [c](double x) { return c / x; });
}
void PowC(long n, const double* a, double c, double* out) {
  MapUnary(n, a, out, [c](double x) { return std::pow(x, c); });
}

void Fma(long n, const double* a, const double* b, const double* c, double* out) {
  Dispatch(n, [=](long lo, long hi) {
    const double* __restrict pa = a;
    const double* __restrict pb = b;
    const double* __restrict pc = c;
    double* __restrict po = out;
    for (long i = lo; i < hi; ++i) {
      po[i] = pa[i] * pb[i] + pc[i];
    }
  });
}

void Axpy(long n, double alpha, const double* x, double* y) {
  Dispatch(n, [=](long lo, long hi) {
    const double* __restrict px = x;
    double* __restrict py = y;
    for (long i = lo; i < hi; ++i) {
      py[i] += alpha * px[i];
    }
  });
}

void Copy(long n, const double* a, double* out) {
  MapUnary(n, a, out, [](double x) { return x; });
}

void Fill(long n, double c, double* out) {
  Dispatch(n, [=](long lo, long hi) {
    double* __restrict po = out;
    for (long i = lo; i < hi; ++i) {
      po[i] = c;
    }
  });
}

double Sum(long n, const double* a) {
  return Reduce(n, a, 0.0, [](double acc, double x) { return acc + x; });
}

double Dot(long n, const double* a, const double* b) {
  if (!ShouldParallelize(n)) {
    double acc = 0.0;
    for (long i = 0; i < n; ++i) {
      acc += a[i] * b[i];
    }
    return acc;
  }
  int threads = EffectiveThreads();
  long chunk = (n + threads - 1) / threads;
  std::vector<double> partials(static_cast<std::size_t>(threads), 0.0);
  Pool().ParallelFor(0, threads, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      long lo = static_cast<long>(t) * chunk;
      long hi = lo + chunk < n ? lo + chunk : n;
      double acc = 0.0;
      for (long i = lo; i < hi; ++i) {
        acc += a[i] * b[i];
      }
      partials[static_cast<std::size_t>(t)] = acc;
    }
  });
  double acc = 0.0;
  for (double p : partials) {
    acc += p;
  }
  return acc;
}

double MaxReduce(long n, const double* a) {
  MZ_CHECK_MSG(n > 0, "MaxReduce over an empty array");
  return Reduce(n, a, a[0], [](double acc, double x) { return x > acc ? x : acc; });
}

double MinReduce(long n, const double* a) {
  MZ_CHECK_MSG(n > 0, "MinReduce over an empty array");
  return Reduce(n, a, a[0], [](double acc, double x) { return x < acc ? x : acc; });
}

void Select(long n, const double* cond, const double* if_true, const double* if_false,
            double* out) {
  Dispatch(n, [=](long lo, long hi) {
    for (long i = lo; i < hi; ++i) {
      out[i] = cond[i] != 0.0 ? if_true[i] : if_false[i];
    }
  });
}

void GreaterThan(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x > y ? 1.0 : 0.0; });
}

void LessThan(long n, const double* a, const double* b, double* out) {
  MapBinary(n, a, b, out, [](double x, double y) { return x < y ? 1.0 : 0.0; });
}

}  // namespace vecmath
