// Split annotations for the vecmath library (the paper's MKL integration,
// §7). This is the "wrapped library" the application links instead of — or
// alongside — raw vecmath: same call shapes, but calls are captured into the
// Mozart dataflow graph. The split types mirror Listing 2 of the paper:
//
//   @splittable(size: SizeSplit(size), a: ArraySplit(size),
//               mut out: ArraySplit(size))
//   void vdLog1p(long size, double *a, double *out);
//
//  * SizeSplit  — the element-count argument; splits arithmetically.
//  * ArraySplit — contiguous double arrays; splits are pointer offsets and
//                 updates happen in place, so merges are no-ops.
//  * ReduceAdd / ReduceMax / ReduceMin — merge-only types for reductions
//                 (Ex. 5 in the paper's Listing 4): pieces are per-batch
//                 partials, the merge folds them.
#ifndef MOZART_VECMATH_ANNOTATED_H_
#define MOZART_VECMATH_ANNOTATED_H_

#include <cstdint>

#include "core/client.h"
#include "vecmath/vecmath.h"

namespace mzvec {

// Registers the split types and splitters with the global registry.
// Idempotent; invoked automatically when this translation unit is linked.
void RegisterSplits();

// Serving-startup hook: forces registration (immune to the static-archive
// link-order pitfall — calling any function defined in annotated.cc links
// the TU and runs its initializers) and returns the registry version
// afterwards. Call before spawning session threads so lazy registration
// cannot bump the version mid-traffic and invalidate cached plans
// (core/plan_cache.h keys on it).
std::uint64_t EnsureRegistered();

using UnaryFn = mz::Annotated<void(long, const double*, double*)>;
using BinaryFn = mz::Annotated<void(long, const double*, const double*, double*)>;
using ScalarFn = mz::Annotated<void(long, const double*, double, double*)>;
using TernaryFn = mz::Annotated<void(long, const double*, const double*, const double*, double*)>;
using ReduceFn = mz::Annotated<double(long, const double*)>;
using Reduce2Fn = mz::Annotated<double(long, const double*, const double*)>;

extern const UnaryFn Sqrt, Exp, Log, Log1p, Erf, Sin, Cos, Tan, Asin, Acos, Atan, Abs, Neg, Inv,
    Sqr, Floor, Ceil, Copy;
extern const BinaryFn Add, Sub, Mul, Div, Pow, Atan2, Hypot, Max, Min, GreaterThan, LessThan;
extern const ScalarFn AddC, SubC, MulC, DivC, RSubC, RDivC, PowC;
extern const TernaryFn Fma, Select;
extern const mz::Annotated<void(long, double, const double*, double*)> Axpy;
extern const mz::Annotated<void(long, double, double*)> Fill;
extern const ReduceFn Sum, MaxReduce, MinReduce;
extern const Reduce2Fn Dot;

}  // namespace mzvec

#endif  // MOZART_VECMATH_ANNOTATED_H_
