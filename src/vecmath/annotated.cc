#include "vecmath/annotated.h"

#include <typeindex>

#include "common/check.h"
#include "core/registry.h"
#include "core/unpack.h"

namespace mzvec {
namespace {

using mz::Registry;
using mz::RuntimeInfo;
using mz::SplitContext;
using mz::Value;

// ---- SizeSplit: the element-count argument (paper Listing 2) ----

RuntimeInfo SizeInfo(const long& n, std::span<const std::int64_t> params) {
  (void)n;
  // The scalar contributes no cache footprint; its "elements" are the
  // arithmetic range it describes.
  return RuntimeInfo{params.empty() ? n : params[0], 0};
}

Value SizeSplitFn(const long& n, std::int64_t start, std::int64_t end,
                  std::span<const std::int64_t> params, const SplitContext& ctx) {
  (void)n;
  (void)params;
  (void)ctx;
  return Value::Make<long>(static_cast<long>(end - start));
}

Value SizeMerge(const Value& original, std::vector<Value> pieces,
                std::span<const std::int64_t> params) {
  (void)pieces;
  (void)params;
  return original;
}

// ---- ArraySplit: contiguous double arrays; in-place pointer offsets ----

template <typename Ptr>
RuntimeInfo ArrayInfo(const Ptr& base, std::span<const std::int64_t> params) {
  (void)base;
  MZ_CHECK_MSG(!params.empty(), "ArraySplit requires a length parameter");
  return RuntimeInfo{params[0], static_cast<std::int64_t>(sizeof(double))};
}

template <typename Ptr>
Value ArraySplitFn(const Ptr& base, std::int64_t start, std::int64_t end,
                   std::span<const std::int64_t> params, const SplitContext& ctx) {
  (void)end;
  (void)params;
  (void)ctx;
  return Value::Make<Ptr>(base + start);
}

Value ArrayMerge(const Value& original, std::vector<Value> pieces,
                 std::span<const std::int64_t> params) {
  // Updates happened in place through the offset pointers; nothing to do.
  (void)pieces;
  (void)params;
  return original;
}

// ---- Reduce{Add,Max,Min}: merge-only types for scalar reductions ----

RuntimeInfo ReduceInfo(const double& v, std::span<const std::int64_t> params) {
  (void)v;
  (void)params;
  MZ_THROW("reduction split types are merge-only; they cannot appear on an argument");
}

Value ReduceSplitFn(const double& v, std::int64_t start, std::int64_t end,
                    std::span<const std::int64_t> params, const SplitContext& ctx) {
  (void)v;
  (void)start;
  (void)end;
  (void)params;
  (void)ctx;
  MZ_THROW("reduction split types are merge-only; they cannot be split");
}

template <typename Fold>
Value ReduceMergeWith(std::vector<Value> pieces, Fold fold) {
  MZ_CHECK_MSG(!pieces.empty(), "reduction merge with no pieces");
  double acc = pieces.front().As<double>();
  for (std::size_t i = 1; i < pieces.size(); ++i) {
    acc = fold(acc, pieces[i].As<double>());
  }
  return Value::Make<double>(acc);
}

Value ReduceAddMerge(const Value& original, std::vector<Value> pieces,
                     std::span<const std::int64_t> params) {
  (void)original;
  (void)params;
  return ReduceMergeWith(std::move(pieces), [](double a, double b) { return a + b; });
}

Value ReduceMaxMerge(const Value& original, std::vector<Value> pieces,
                     std::span<const std::int64_t> params) {
  (void)original;
  (void)params;
  return ReduceMergeWith(std::move(pieces), [](double a, double b) { return a > b ? a : b; });
}

Value ReduceMinMerge(const Value& original, std::vector<Value> pieces,
                     std::span<const std::int64_t> params) {
  (void)original;
  (void)params;
  return ReduceMergeWith(std::move(pieces), [](double a, double b) { return a < b ? a : b; });
}

// ---- VecSplit: owned double chunks (streaming windows) ----
//
// Raw double* arrays cannot be stream chunks — a chunk must own its memory
// so the windower can buffer it past the producer's stack frame. VecSplit
// makes std::vector<double> a first-class stream of doubles: Split copies
// the subrange (pieces own their elements), Merge concatenates. Registered
// as the default split type for std::vector<double>, which is what lets the
// windower (core/stream.h) slice and stitch buffered vector chunks; stream
// bodies unpack the window vector and call the raw-pointer mzvec surface on
// its data().

using Vec = std::vector<double>;

RuntimeInfo VecInfo(const Vec& v, std::span<const std::int64_t> params) {
  (void)params;
  return RuntimeInfo{static_cast<std::int64_t>(v.size()),
                     static_cast<std::int64_t>(sizeof(double))};
}

Value VecSplitFn(const Vec& v, std::int64_t start, std::int64_t end,
                 std::span<const std::int64_t> params, const SplitContext& ctx) {
  (void)params;
  (void)ctx;
  return Value::Make<Vec>(Vec(v.begin() + start, v.begin() + end));
}

Value VecMerge(const Value& original, std::vector<Value> pieces,
               std::span<const std::int64_t> params) {
  (void)original;
  (void)params;
  std::size_t total = 0;
  for (const Value& p : pieces) {
    total += p.As<Vec>().size();
  }
  Vec out;
  out.reserve(total);
  for (Value& p : pieces) {
    const Vec& v = p.As<Vec>();
    out.insert(out.end(), v.begin(), v.end());
  }
  return Value::Make<Vec>(std::move(out));
}

// Split-type constructor shared by SizeSplit and ArraySplit: params = (n),
// taken from the `size` argument.
std::optional<std::vector<std::int64_t>> LengthCtor(std::span<const Value> args) {
  MZ_CHECK_MSG(args.size() == 1, "length constructor expects one argument");
  if (!args[0].has_value()) {
    return std::nullopt;  // pending; defer (never happens for literal sizes)
  }
  return std::vector<std::int64_t>{mz::ValueToInt64(args[0])};
}

// ---- annotation patterns ----

mz::Annotation UnaryAnn(const char* name) {
  return mz::AnnotationBuilder(name)
      .Arg("size", mz::Split("SizeSplit", {"size"}))
      .Arg("a", mz::Split("ArraySplit", {"size"}))
      .MutArg("out", mz::Split("ArraySplit", {"size"}))
      .Build();
}

mz::Annotation BinaryAnn(const char* name) {
  return mz::AnnotationBuilder(name)
      .Arg("size", mz::Split("SizeSplit", {"size"}))
      .Arg("a", mz::Split("ArraySplit", {"size"}))
      .Arg("b", mz::Split("ArraySplit", {"size"}))
      .MutArg("out", mz::Split("ArraySplit", {"size"}))
      .Build();
}

mz::Annotation ScalarAnn(const char* name) {
  return mz::AnnotationBuilder(name)
      .Arg("size", mz::Split("SizeSplit", {"size"}))
      .Arg("a", mz::Split("ArraySplit", {"size"}))
      .Arg("c", mz::NoSplit())
      .MutArg("out", mz::Split("ArraySplit", {"size"}))
      .Build();
}

mz::Annotation TernaryAnn(const char* name) {
  return mz::AnnotationBuilder(name)
      .Arg("size", mz::Split("SizeSplit", {"size"}))
      .Arg("a", mz::Split("ArraySplit", {"size"}))
      .Arg("b", mz::Split("ArraySplit", {"size"}))
      .Arg("c", mz::Split("ArraySplit", {"size"}))
      .MutArg("out", mz::Split("ArraySplit", {"size"}))
      .Build();
}

mz::Annotation ReduceAnn(const char* name, const char* reduce_type) {
  return mz::AnnotationBuilder(name)
      .Arg("size", mz::Split("SizeSplit", {"size"}))
      .Arg("a", mz::Split("ArraySplit", {"size"}))
      .Returns(mz::Split(reduce_type))
      .Build();
}

mz::Annotation Reduce2Ann(const char* name, const char* reduce_type) {
  return mz::AnnotationBuilder(name)
      .Arg("size", mz::Split("SizeSplit", {"size"}))
      .Arg("a", mz::Split("ArraySplit", {"size"}))
      .Arg("b", mz::Split("ArraySplit", {"size"}))
      .Returns(mz::Split(reduce_type))
      .Build();
}

const bool g_registered = [] {
  RegisterSplits();
  return true;
}();

}  // namespace

void RegisterSplits() {
  static const bool done = [] {
    Registry& reg = Registry::Global();
    reg.DefineSplitType("SizeSplit", LengthCtor, nullptr);
    reg.DefineSplitType("ArraySplit", LengthCtor, nullptr);
    reg.DefineSplitType("VecSplit", LengthCtor, [](const Value& v) {
      return std::vector<std::int64_t>{static_cast<std::int64_t>(v.As<Vec>().size())};
    });
    reg.DefineSplitType("ReduceAdd", nullptr, nullptr);
    reg.DefineSplitType("ReduceMax", nullptr, nullptr);
    reg.DefineSplitType("ReduceMin", nullptr, nullptr);

    // Pieces of these types alias the original storage (scalars and pointer
    // offsets), so their merges are identities — the executor may keep the
    // pieces across a stage boundary (piece passing) without materializing —
    // and a piece can itself be re-Split with piece-local ranges (pointer
    // arithmetic), which is what zero-copy re-batching leans on. ArraySplit
    // declares its 8-byte element width for the per-stage footprint model;
    // SizeSplit splits arithmetic, not memory, and stays at width 0.
    const mz::SplitterTraits kInPlaceSize{.merge_is_identity = true,
                                          .merge_only = false,
                                          .element_width = 0,
                                          .can_subdivide = true};
    const mz::SplitterTraits kInPlaceArray{.merge_is_identity = true,
                                           .merge_only = false,
                                           .element_width = sizeof(double),
                                           .can_subdivide = true};
    // The scalar reductions fold commutatively, so a previous merge result
    // is itself a valid piece of the next merge — streams may accumulate
    // them firing by firing (incremental_merge, core/stream.h).
    const mz::SplitterTraits kMergeOnly{.merge_is_identity = false,
                                        .merge_only = true,
                                        .element_width = 0,
                                        .can_subdivide = false,
                                        .incremental_merge = true};
    // Owned chunks: pieces are vectors themselves, so piece-local re-splits
    // are exact (can_subdivide) and Merge really concatenates.
    const mz::SplitterTraits kOwnedVec{.merge_is_identity = false,
                                       .merge_only = false,
                                       .element_width = sizeof(double),
                                       .can_subdivide = true};
    mz::RegisterTypedSplitter<long>(reg, "SizeSplit", SizeInfo, SizeSplitFn, SizeMerge,
                                    kInPlaceSize);
    mz::RegisterTypedSplitter<double*>(reg, "ArraySplit", ArrayInfo<double*>,
                                       ArraySplitFn<double*>, ArrayMerge, kInPlaceArray);
    mz::RegisterTypedSplitter<const double*>(reg, "ArraySplit", ArrayInfo<const double*>,
                                             ArraySplitFn<const double*>, ArrayMerge,
                                             kInPlaceArray);
    mz::RegisterTypedSplitter<Vec>(reg, "VecSplit", VecInfo, VecSplitFn, VecMerge, kOwnedVec);
    reg.SetDefaultSplitType(std::type_index(typeid(Vec)), "VecSplit");
    mz::RegisterTypedSplitter<double>(reg, "ReduceAdd", ReduceInfo, ReduceSplitFn, ReduceAddMerge,
                                      kMergeOnly);
    mz::RegisterTypedSplitter<double>(reg, "ReduceMax", ReduceInfo, ReduceSplitFn, ReduceMaxMerge,
                                      kMergeOnly);
    mz::RegisterTypedSplitter<double>(reg, "ReduceMin", ReduceInfo, ReduceSplitFn, ReduceMinMerge,
                                      kMergeOnly);
    return true;
  }();
  (void)done;
}

// Wrapped library surface. Each wrapper pairs the *unmodified* vecmath
// kernel with its SA — no vecmath code changes.
const UnaryFn Sqrt(vecmath::Sqrt, UnaryAnn("Sqrt"));
const UnaryFn Exp(vecmath::Exp, UnaryAnn("Exp"));
const UnaryFn Log(vecmath::Log, UnaryAnn("Log"));
const UnaryFn Log1p(vecmath::Log1p, UnaryAnn("Log1p"));
const UnaryFn Erf(vecmath::Erf, UnaryAnn("Erf"));
const UnaryFn Sin(vecmath::Sin, UnaryAnn("Sin"));
const UnaryFn Cos(vecmath::Cos, UnaryAnn("Cos"));
const UnaryFn Tan(vecmath::Tan, UnaryAnn("Tan"));
const UnaryFn Asin(vecmath::Asin, UnaryAnn("Asin"));
const UnaryFn Acos(vecmath::Acos, UnaryAnn("Acos"));
const UnaryFn Atan(vecmath::Atan, UnaryAnn("Atan"));
const UnaryFn Abs(vecmath::Abs, UnaryAnn("Abs"));
const UnaryFn Neg(vecmath::Neg, UnaryAnn("Neg"));
const UnaryFn Inv(vecmath::Inv, UnaryAnn("Inv"));
const UnaryFn Sqr(vecmath::Sqr, UnaryAnn("Sqr"));
const UnaryFn Floor(vecmath::Floor, UnaryAnn("Floor"));
const UnaryFn Ceil(vecmath::Ceil, UnaryAnn("Ceil"));
const UnaryFn Copy(vecmath::Copy, UnaryAnn("Copy"));

const BinaryFn Add(vecmath::Add, BinaryAnn("Add"));
const BinaryFn Sub(vecmath::Sub, BinaryAnn("Sub"));
const BinaryFn Mul(vecmath::Mul, BinaryAnn("Mul"));
const BinaryFn Div(vecmath::Div, BinaryAnn("Div"));
const BinaryFn Pow(vecmath::Pow, BinaryAnn("Pow"));
const BinaryFn Atan2(vecmath::Atan2, BinaryAnn("Atan2"));
const BinaryFn Hypot(vecmath::Hypot, BinaryAnn("Hypot"));
const BinaryFn Max(vecmath::Max, BinaryAnn("Max"));
const BinaryFn Min(vecmath::Min, BinaryAnn("Min"));
const BinaryFn GreaterThan(vecmath::GreaterThan, BinaryAnn("GreaterThan"));
const BinaryFn LessThan(vecmath::LessThan, BinaryAnn("LessThan"));

const ScalarFn AddC(vecmath::AddC, ScalarAnn("AddC"));
const ScalarFn SubC(vecmath::SubC, ScalarAnn("SubC"));
const ScalarFn MulC(vecmath::MulC, ScalarAnn("MulC"));
const ScalarFn DivC(vecmath::DivC, ScalarAnn("DivC"));
const ScalarFn RSubC(vecmath::RSubC, ScalarAnn("RSubC"));
const ScalarFn RDivC(vecmath::RDivC, ScalarAnn("RDivC"));
const ScalarFn PowC(vecmath::PowC, ScalarAnn("PowC"));

const TernaryFn Fma(vecmath::Fma, TernaryAnn("Fma"));
const TernaryFn Select(vecmath::Select, TernaryAnn("Select"));

const mz::Annotated<void(long, double, const double*, double*)> Axpy(
    vecmath::Axpy, mz::AnnotationBuilder("Axpy")
                       .Arg("size", mz::Split("SizeSplit", {"size"}))
                       .Arg("alpha", mz::NoSplit())
                       .Arg("x", mz::Split("ArraySplit", {"size"}))
                       .MutArg("y", mz::Split("ArraySplit", {"size"}))
                       .Build());

const mz::Annotated<void(long, double, double*)> Fill(
    vecmath::Fill, mz::AnnotationBuilder("Fill")
                       .Arg("size", mz::Split("SizeSplit", {"size"}))
                       .Arg("c", mz::NoSplit())
                       .MutArg("out", mz::Split("ArraySplit", {"size"}))
                       .Build());

const ReduceFn Sum(vecmath::Sum, ReduceAnn("Sum", "ReduceAdd"));
const ReduceFn MaxReduce(vecmath::MaxReduce, ReduceAnn("MaxReduce", "ReduceMax"));
const ReduceFn MinReduce(vecmath::MinReduce, ReduceAnn("MinReduce", "ReduceMin"));
const Reduce2Fn Dot(vecmath::Dot, Reduce2Ann("Dot", "ReduceAdd"));

std::uint64_t EnsureRegistered() {
  RegisterSplits();
  return mz::Registry::Global().version();
}

}  // namespace mzvec
