// vecmath: a hand-optimized vector math library in the mold of Intel MKL's
// VML / L1 BLAS (the paper's closed-source substrate; see DESIGN.md §3 for
// the substitution rationale).
//
// Semantics follow MKL's vector math conventions:
//  * every function takes an element count and raw pointers;
//  * outputs are written in place into caller-provided buffers (out may
//    alias an input, as in `vdLog1p(n, d1, d1)`);
//  * like MKL, the library parallelizes *internally*: calls over large
//    arrays fan out across a thread pool (stand-in for MKL's TBB backing),
//    calls under the grain size run serially. `SetNumThreads(1)` yields the
//    "single-threaded library" baselines (NumPy mode in the benchmarks).
//
// None of these functions know anything about Mozart — that is the point.
// The split annotations live entirely in annotated.h.
#ifndef MOZART_VECMATH_VECMATH_H_
#define MOZART_VECMATH_VECMATH_H_

namespace vecmath {

// Internal parallelism control (process-wide, like mkl_set_num_threads).
void SetNumThreads(int threads);
int GetNumThreads();

// Calls with fewer elements than this run serially even in parallel mode.
inline constexpr long kParallelGrain = 1 << 15;

// --- unary: out[i] = f(a[i]) ---
void Sqrt(long n, const double* a, double* out);
void Exp(long n, const double* a, double* out);
void Log(long n, const double* a, double* out);
void Log1p(long n, const double* a, double* out);
void Erf(long n, const double* a, double* out);
void Sin(long n, const double* a, double* out);
void Cos(long n, const double* a, double* out);
void Tan(long n, const double* a, double* out);
void Asin(long n, const double* a, double* out);
void Acos(long n, const double* a, double* out);
void Atan(long n, const double* a, double* out);
void Abs(long n, const double* a, double* out);
void Neg(long n, const double* a, double* out);
void Inv(long n, const double* a, double* out);
void Sqr(long n, const double* a, double* out);
void Floor(long n, const double* a, double* out);
void Ceil(long n, const double* a, double* out);

// --- binary: out[i] = f(a[i], b[i]) ---
void Add(long n, const double* a, const double* b, double* out);
void Sub(long n, const double* a, const double* b, double* out);
void Mul(long n, const double* a, const double* b, double* out);
void Div(long n, const double* a, const double* b, double* out);
void Pow(long n, const double* a, const double* b, double* out);
void Atan2(long n, const double* a, const double* b, double* out);
void Hypot(long n, const double* a, const double* b, double* out);
void Max(long n, const double* a, const double* b, double* out);
void Min(long n, const double* a, const double* b, double* out);

// --- array ∘ scalar: out[i] = f(a[i], c) ---
void AddC(long n, const double* a, double c, double* out);
void SubC(long n, const double* a, double c, double* out);
void MulC(long n, const double* a, double c, double* out);
void DivC(long n, const double* a, double c, double* out);
void RSubC(long n, const double* a, double c, double* out);  // c - a[i]
void RDivC(long n, const double* a, double c, double* out);  // c / a[i]
void PowC(long n, const double* a, double c, double* out);   // a[i]^c

// --- fused ternary ---
void Fma(long n, const double* a, const double* b, const double* c, double* out);  // a*b + c

// --- L1 BLAS style ---
void Axpy(long n, double alpha, const double* x, double* y);  // y += alpha * x
void Copy(long n, const double* a, double* out);
void Fill(long n, double c, double* out);

// --- reductions ---
double Sum(long n, const double* a);
double Dot(long n, const double* a, const double* b);
double MaxReduce(long n, const double* a);
double MinReduce(long n, const double* a);

// Predicate selection: out[i] = cond[i] != 0.0 ? if_true[i] : if_false[i].
void Select(long n, const double* cond, const double* if_true, const double* if_false,
            double* out);

// Comparison producing a 0/1 mask: out[i] = a[i] > b[i].
void GreaterThan(long n, const double* a, const double* b, double* out);
void LessThan(long n, const double* a, const double* b, double* out);

}  // namespace vecmath

#endif  // MOZART_VECMATH_VECMATH_H_
