// Closed-loop serving load generator: adversarial multi-tenant traffic over
// one ServingContext (ISSUE 8). Three experiments, each an ablation pair so
// the new policy and its baseline land in the same BENCH json:
//
//  1. Fairness under a chatty neighbor — 4 chatty tenants x 3 connections
//     each vs. 12 sparse single-connection tenants, every connection a
//     closed loop of pooled-class plans with a zipf-skewed size mix, all
//     contending for ONE admission token for a fixed wall duration.
//     Sessions churn (a fresh Session every few requests), so hundreds of
//     sessions pass through the context per run. Reported: Jain's fairness
//     index over per-TENANT completions, plus per-class p50/p95/p99 of
//     request latency and of per-request admission wait. DRR should hold
//     Jain near 1.0 (each tenant is one rotation slot, however many
//     connections it opens); the FIFO ablation serves per *connection*, so
//     chatty tenants earn ~3x and Jain drops toward 0.75.
//
//  2. Lone client vs. the batch window — an OPEN arrival process (the
//     client paces submissions with exponential think time, independent of
//     completions) against a 400 us coalescing window. With the fixed
//     window every evaluation is a rider-less leader sleeping out the full
//     window; the arrival-rate-adaptive window predicts no rider and
//     collapses the wait. Reported: per-eval latency percentiles and the
//     total adapted window the leaders actually chose.
//
//  3. Plan-cache byte budget, allocator-true vs. structural-estimate
//     accounting — a stream of distinct plan templates against one byte
//     budget. True accounting charges what the entries really allocate
//     (capacity slack, allocator rounding, string buffers), so fewer stay
//     resident; the estimate ablation undercharges and overpacks the same
//     budget. Reported: resident entries/bytes and evictions per policy.
//
//  4. Deadline-bearing clients, shedding on vs. off (ISSUE 9) — 12 closed-
//     loop clients with a per-request deadline hammer ONE admission token
//     with pooled-class plans, offered load ~12x capacity. With shedding ON
//     every request carries a CancelToken: the gate rejects up front
//     (OverloadError + retry_after_us, which the client sleeps on) when the
//     hold-time EWMA predicts the deadline cannot be met, and queued or
//     running requests that outlive the deadline abort. OFF is the ablation:
//     no token, every request queues and runs to completion ~12 service
//     times later. Reported: goodput (deadline-MET completions per second),
//     shed/abort rates, and latency percentiles of the served requests —
//     shedding should hold served p99 near the deadline while the ablation's
//     p99 grows with the whole queue.
//
// Methodology note (also in ARCHITECTURE.md): experiment 1 is CLOSED-loop —
// every connection always has a request in flight, so completions measure
// each tenant's *share* of a saturated resource, which is what a fairness
// index needs. Experiment 2 is OPEN-loop — arrivals are paced externally,
// so latency includes the queueing a real lone client would see, which is
// what a window-policy comparison needs. Wall-clock columns are noisy on
// single-core CI (ROADMAP); read shares, routing counts, and ratios.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/client.h"
#include "core/resilience.h"
#include "core/session.h"
#include "vecmath/annotated.h"

namespace {

void Pipeline(long n, const double* a, const double* b, double* out) {
  mzvec::Log1p(n, a, out);
  mzvec::Add(n, out, b, out);
  mzvec::Div(n, out, b, out);
}

double Pct(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto idx = std::min(v.size() - 1, static_cast<std::size_t>(p / 100.0 *
                                                                   static_cast<double>(v.size())));
  return v[idx];
}

double Jain(const std::vector<double>& x) {
  double sum = 0.0, sumsq = 0.0;
  for (double v : x) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq <= 0.0) {
    return 0.0;
  }
  return sum * sum / (static_cast<double>(x.size()) * sumsq);
}

// ------------------------------------------- 1. fairness under a neighbor ----

struct ClassSamples {
  std::vector<double> lat_ms;   // end-to-end per-request latency
  std::vector<double> wait_ms;  // per-request admission wait (stats delta)
};

struct FairnessResult {
  double jain = 0.0;
  ClassSamples chatty, sparse;
  long sessions_created = 0;
};

FairnessResult RunFairness(bool drr, long n_base, long run_ms) {
  constexpr int kChattyTenants = 4, kConnsPerChatty = 3, kSparseTenants = 12;
  constexpr int kTenants = kChattyTenants + kSparseTenants;
  constexpr int kEvalsPerSession = 8;  // session churn: fresh Session after this many

  mz::ServingOptions serving;
  serving.pool_threads = 4;
  serving.max_pool_sessions = 1;  // one token: admission order IS the schedule
  serving.serial_cutoff_elems = 256;  // every request in this mix is pooled-class
  serving.fair_admission = drr;
  mz::ServingContext ctx(serving);

  std::vector<std::atomic<std::int64_t>> per_tenant(kTenants);
  std::atomic<long> sessions{0};
  std::mutex merge_mu;
  FairnessResult res;

  const std::int64_t deadline = mz::NowNanos() + run_ms * 1'000'000;

  auto connection = [&](int tenant, int conn, bool chatty) {
    std::mt19937 rng(static_cast<unsigned>(tenant * 131 + conn + 7));
    // Zipf-skewed plan mix: sizes n, 2n, 4n, 8n with weight 1/k^1.2.
    std::discrete_distribution<int> zipf(
        {1.0, std::pow(2.0, -1.2), std::pow(3.0, -1.2), std::pow(4.0, -1.2)});
    const std::size_t cap = static_cast<std::size_t>(8 * n_base);
    std::vector<double> a(cap, 1.5), b(cap, 2.5), out(cap);
    ClassSamples local;

    while (mz::NowNanos() < deadline) {
      mz::SessionOptions opts;
      opts.serving = &ctx;
      // All of a tenant's connections share one admission identity: under
      // DRR they jointly earn one rotation slot's worth of admissions.
      opts.admission_session = static_cast<std::uint64_t>(tenant + 1);
      mz::Session session(opts);
      sessions.fetch_add(1, std::memory_order_relaxed);
      mz::Session::Scope scope(session);
      for (int e = 0; e < kEvalsPerSession && mz::NowNanos() < deadline; ++e) {
        const long n = n_base << zipf(rng);
        const std::int64_t w0 =
            session.stats().admission_wait_ns.load(std::memory_order_relaxed);
        const std::int64_t t0 = mz::NowNanos();
        Pipeline(n, a.data(), b.data(), out.data());
        session.Evaluate();
        session.Reset();
        const std::int64_t t1 = mz::NowNanos();
        const std::int64_t w1 =
            session.stats().admission_wait_ns.load(std::memory_order_relaxed);
        local.lat_ms.push_back(static_cast<double>(t1 - t0) * 1e-6);
        local.wait_ms.push_back(static_cast<double>(w1 - w0) * 1e-6);
        per_tenant[static_cast<std::size_t>(tenant)].fetch_add(1, std::memory_order_relaxed);
      }
    }

    std::lock_guard<std::mutex> lock(merge_mu);
    ClassSamples& cls = chatty ? res.chatty : res.sparse;
    cls.lat_ms.insert(cls.lat_ms.end(), local.lat_ms.begin(), local.lat_ms.end());
    cls.wait_ms.insert(cls.wait_ms.end(), local.wait_ms.begin(), local.wait_ms.end());
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kChattyTenants; ++t) {
    for (int c = 0; c < kConnsPerChatty; ++c) {
      threads.emplace_back(connection, t, c, /*chatty=*/true);
    }
  }
  for (int t = kChattyTenants; t < kTenants; ++t) {
    threads.emplace_back(connection, t, 0, /*chatty=*/false);
  }
  for (std::thread& th : threads) {
    th.join();
  }

  std::vector<double> completions(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    completions[static_cast<std::size_t>(t)] =
        static_cast<double>(per_tenant[static_cast<std::size_t>(t)].load());
  }
  res.jain = Jain(completions);
  res.sessions_created = sessions.load();
  return res;
}

// --------------------------------------- 2. lone client vs. batch window ----

struct LoneClientResult {
  std::vector<double> lat_us;
  std::int64_t adapted_window_us = 0;
  std::int64_t dispatches = 0;
};

LoneClientResult RunLoneClient(bool adaptive, long n, int evals) {
  mz::ServingOptions serving;
  serving.pool_threads = 2;
  serving.max_pool_sessions = 2;
  serving.serial_cutoff_elems = 1 << 20;  // inline-class: everything rides the batcher
  serving.batch_window_us = 400;
  serving.batch_max_plans = 8;
  serving.adaptive_batch_window = adaptive;
  mz::ServingContext ctx(serving);

  LoneClientResult res;
  {
    const std::size_t size = static_cast<std::size_t>(n);
    std::vector<double> a(size, 1.5), b(size, 2.5), out(size);
    mz::SessionOptions opts;
    opts.serving = &ctx;
    mz::Session session(opts);
    mz::Session::Scope scope(session);
    // Open arrival process: exponential think time (mean 1.5 ms) between
    // submissions, independent of completions — the smoothed inter-arrival
    // gap sits well past the 400 us window, so no rider is ever predicted.
    std::mt19937 rng(42);
    std::exponential_distribution<double> think(1.0 / 1500.0);  // mean, us
    for (int e = 0; e < evals; ++e) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(think(rng))));
      const std::int64_t t0 = mz::NowNanos();
      Pipeline(n, a.data(), b.data(), out.data());
      session.Evaluate();
      session.Reset();
      res.lat_us.push_back(static_cast<double>(mz::NowNanos() - t0) * 1e-3);
    }
    res.dispatches = ctx.batcher()->dispatches();
  }
  res.adapted_window_us = ctx.AggregateStats().batch_window_adapted_us;
  return res;
}

// ------------------------- 3. cache byte budget, true vs. estimate bytes ----

struct CacheAccountingResult {
  std::size_t resident_entries = 0;
  std::size_t charged_bytes = 0;
  std::int64_t evictions = 0;
};

CacheAccountingResult RunCacheAccounting(bool true_bytes, int templates, long n_base) {
  mz::ServingOptions serving;
  serving.pool_threads = 2;
  serving.max_pool_sessions = 2;
  serving.serial_cutoff_elems = 1 << 20;  // inline: planning cost is the workload
  serving.plan_cache_entries = 1 << 14;   // entry cap out of the way
  serving.plan_cache_bytes = 64 * 1024;   // the contended budget
  serving.plan_cache_true_bytes = true_bytes;
  mz::ServingContext ctx(serving);

  {
    const std::size_t cap = static_cast<std::size_t>(n_base + templates);
    std::vector<double> a(cap, 1.5), b(cap, 2.5), out(cap);
    mz::SessionOptions opts;
    opts.serving = &ctx;
    mz::Session session(opts);
    mz::Session::Scope scope(session);
    for (int k = 0; k < templates; ++k) {
      // Each size is a distinct plan key: a steady stream of new templates
      // pushing against the byte budget.
      Pipeline(n_base + k, a.data(), b.data(), out.data());
      session.Evaluate();
      session.Reset();
    }
  }

  CacheAccountingResult res;
  res.resident_entries = ctx.plan_cache().size();
  res.charged_bytes = ctx.plan_cache().bytes();
  res.evictions = ctx.plan_cache().evictions();
  return res;
}

// ---------------------------- 4. deadline clients, shedding on vs. off ----

struct SheddingResult {
  std::vector<double> served_ms;  // latency of requests that completed
  std::int64_t met = 0;           // completions within the deadline
  std::int64_t attempts = 0;
  std::int64_t shed = 0;     // OverloadError: rejected before any queueing
  std::int64_t aborted = 0;  // DeadlineError / CancelledError after admission
  double wall_s = 0.0;
};

SheddingResult RunShedding(bool shedding, long n, long deadline_us, long run_ms) {
  constexpr int kClients = 12;

  mz::ServingOptions serving;
  serving.pool_threads = 4;
  serving.max_pool_sessions = 1;  // one token: offered load is ~12x capacity
  serving.serial_cutoff_elems = 256;  // pooled-class only
  mz::ServingContext ctx(serving);

  std::mutex merge_mu;
  SheddingResult res;
  const std::int64_t t_start = mz::NowNanos();
  const std::int64_t t_end = t_start + run_ms * 1'000'000;

  auto client = [&](int id) {
    const std::size_t size = static_cast<std::size_t>(n);
    std::vector<double> a(size, 1.5 + id), b(size, 2.5), out(size);
    mz::SessionOptions opts;
    opts.serving = &ctx;
    mz::Session session(opts);
    mz::Session::Scope scope(session);
    SheddingResult local;

    while (mz::NowNanos() < t_end) {
      ++local.attempts;
      const std::int64_t t0 = mz::NowNanos();
      Pipeline(n, a.data(), b.data(), out.data());
      try {
        if (shedding) {
          mz::CancelSource src;
          src.SetDeadlineNanos(t0 + deadline_us * 1000);
          mz::EvalOptions eo;
          eo.cancel = src.token();
          session.Evaluate(eo);
        } else {
          session.Evaluate();
        }
        session.Reset();
        const double lat_ms = static_cast<double>(mz::NowNanos() - t0) * 1e-6;
        local.served_ms.push_back(lat_ms);
        if (lat_ms * 1000.0 <= static_cast<double>(deadline_us)) {
          ++local.met;
        }
      } catch (const mz::OverloadError& e) {
        ++local.shed;
        session.Reset();
        // The structured backpressure hint in action: pace the retry.
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min<std::int64_t>(e.retry_after_us, 1000)));
      } catch (const mz::CancelledError&) {  // DeadlineError included
        ++local.aborted;
        session.Reset();
      }
    }

    std::lock_guard<std::mutex> lock(merge_mu);
    res.served_ms.insert(res.served_ms.end(), local.served_ms.begin(), local.served_ms.end());
    res.met += local.met;
    res.attempts += local.attempts;
    res.shed += local.shed;
    res.aborted += local.aborted;
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back(client, c);
  }
  for (std::thread& th : threads) {
    th.join();
  }
  res.wall_s = static_cast<double>(mz::NowNanos() - t_start) * 1e-9;
  return res;
}

// ------------------- 5. resilient clients under a faulty/overloaded gate ----

enum class RetryPolicy { kNaive, kBudgeted, kBudgetedHedged };

struct ResilienceRunResult {
  std::vector<double> served_ms;
  std::int64_t met = 0;
  std::int64_t attempts = 0;
  std::int64_t failures = 0;  // requests that never completed
  std::int64_t retries = 0;
  std::int64_t budget_exhausted = 0;
  std::int64_t hedges = 0;
  std::int64_t hedge_wins = 0;
  double wall_s = 0.0;
};

// Overload + transient faults: 12 deadline-bearing clients on ONE admission
// token (offered load ~12x capacity) with the fault injector failing ~15%
// of evals at the plan-cache lookup site. The naive client is the classic anti-pattern: retry
// immediately on any error, deadline-blind, no backoff — it keeps every
// rejected request in the system and serves almost nothing on time. The
// budgeted client (ResilientClient) propagates the deadline (the gate sheds
// infeasible work up front), paces retries on retry_after_us with jittered
// backoff, and stops retrying when the budget empties — goodput is work the
// server actually had capacity for. The hedged variant adds tail hedging on
// top; under overload the shared budget keeps it from doubling load.
ResilienceRunResult RunResilientOverload(RetryPolicy policy, long n, long deadline_us,
                                         long run_ms) {
  constexpr int kClients = 12;

  mz::ServingOptions serving;
  serving.pool_threads = 4;
  serving.max_pool_sessions = 1;
  serving.serial_cutoff_elems = 256;  // pooled-class only
  mz::ServingContext ctx(serving);

  mz::FaultConfig faults;
  faults.seed = 0x5091;
  faults.p_throw = 0.15;
  // Once-per-eval site: a clean "15% of requests hit a transient fault"
  // model. The exec.* sites fire per piece, which at 8 pieces per plan would
  // compound into a near-certain failure per eval and swamp the experiment.
  faults.only_site = "plan_cache.lookup";
  mz::FaultInjector::Global().Arm(faults);

  std::mutex merge_mu;
  ResilienceRunResult res;
  const std::int64_t t_start = mz::NowNanos();
  const std::int64_t t_end = t_start + run_ms * 1'000'000;

  auto client_loop = [&](int id) {
    const std::size_t size = static_cast<std::size_t>(n);
    std::vector<double> a(size, 1.5 + id), b(size, 2.5);
    std::vector<double> out[2] = {std::vector<double>(size), std::vector<double>(size)};
    mz::SessionOptions opts;
    opts.serving = &ctx;
    mz::Session session(opts);

    mz::ResilienceOptions ro;
    ro.max_attempts = 6;
    ro.breaker_enabled = false;  // isolate the retry policy in this experiment
    ro.jitter_seed = 0x5eed + static_cast<std::uint64_t>(id);
    if (policy == RetryPolicy::kBudgetedHedged) {
      ro.hedge_enabled = true;
      ro.hedge_min_us = 500;
    }
    mz::ResilientClient client(session, ro);
    ResilienceRunResult local;

    while (mz::NowNanos() < t_end) {
      ++local.attempts;
      const std::int64_t t0 = mz::NowNanos();
      bool served = false;
      if (policy == RetryPolicy::kNaive) {
        // Naive: hammer until it goes through, ignore the deadline and every
        // backpressure hint the server sends.
        for (int tries = 0; tries < 6 && !served && mz::NowNanos() < t_end; ++tries) {
          try {
            {
              mz::Session::Scope scope(session);
              Pipeline(n, a.data(), b.data(), out[0].data());
            }
            session.Evaluate();
            session.Reset();
            served = true;
          } catch (const mz::Error&) {
            session.Reset();  // and retry instantly: the retry storm
          }
        }
      } else {
        mz::CancelSource src;
        src.SetDeadlineNanos(t0 + deadline_us * 1000);
        mz::EvalOptions eo;
        eo.cancel = src.token();
        try {
          client.Eval(
              [&](mz::Session& s, const mz::EvalOptions&, int lane) {
                mz::Session::Scope scope(s);
                Pipeline(n, a.data(), b.data(), out[lane].data());
              },
              eo);
          served = true;
        } catch (const mz::OverloadError& e) {
          // Final rejection after the policy stack gave up: pace the next
          // request on the structured hint, exactly like experiment 4. The
          // hint must be honored in full — undercutting it re-offers work the
          // gate already said is infeasible and starves the run of goodput.
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::min<std::int64_t>(std::max<std::int64_t>(e.retry_after_us, 100), 20'000)));
        } catch (const mz::Error&) {  // deadline, cancel, fault leakage
        }
      }
      if (served) {
        const double lat_ms = static_cast<double>(mz::NowNanos() - t0) * 1e-6;
        local.served_ms.push_back(lat_ms);
        if (lat_ms * 1000.0 <= static_cast<double>(deadline_us)) {
          ++local.met;
        }
      } else {
        ++local.failures;
      }
    }

    std::lock_guard<std::mutex> lock(merge_mu);
    res.served_ms.insert(res.served_ms.end(), local.served_ms.begin(), local.served_ms.end());
    res.met += local.met;
    res.attempts += local.attempts;
    res.failures += local.failures;
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back(client_loop, c);
  }
  for (std::thread& th : threads) {
    th.join();
  }
  mz::FaultInjector::Global().Disarm();
  res.wall_s = static_cast<double>(mz::NowNanos() - t_start) * 1e-9;

  const mz::EvalStats::Snapshot agg = ctx.AggregateStats();
  res.retries = agg.retries;
  res.budget_exhausted = agg.retry_budget_exhausted;
  res.hedges = agg.hedges_launched;
  res.hedge_wins = agg.hedge_wins;
  return res;
}

// Straggler tail: an uncontended context where ~8% of primary attempts stall
// 5 ms — a GC pause / page fault stand-in — against sub-100us evaluations.
// The stall polls the eval's cancel token (a straggling backend observes
// cancellation; it doesn't vanish), so when the hedge lane wins and cancels
// the primary, the caller gets the hedge's answer at hedge speed instead of
// waiting out the stall — that early return is what collapses the served p99.
ResilienceRunResult RunHedging(bool hedged, long n, long run_ms) {
  constexpr int kClients = 2;
  constexpr double kStraggleP = 0.08;
  constexpr std::int64_t kStraggleNs = 5'000'000;

  mz::ServingOptions serving;
  serving.pool_threads = 2;
  serving.max_pool_sessions = 2;
  serving.serial_cutoff_elems = 1 << 20;  // inline-class: no token contention
  mz::ServingContext ctx(serving);

  std::mutex merge_mu;
  ResilienceRunResult res;
  const std::int64_t t_start = mz::NowNanos();
  const std::int64_t t_end = t_start + run_ms * 1'000'000;

  auto client_loop = [&](int id) {
    const std::size_t size = static_cast<std::size_t>(n);
    std::vector<double> a(size, 1.5 + id), b(size, 2.5);
    std::vector<double> out[2] = {std::vector<double>(size), std::vector<double>(size)};
    mz::SessionOptions opts;
    opts.serving = &ctx;
    mz::Session session(opts);

    mz::ResilienceOptions ro;
    ro.breaker_enabled = false;
    ro.jitter_seed = 0x5eed + static_cast<std::uint64_t>(id);
    ro.hedge_enabled = hedged;
    ro.hedge_quantile = 0.75;  // arm well under the straggle fraction
    // Hedges spend retry budget; a straggle-heavy tail needs a faster earn
    // rate than the retry default or hedging self-extinguishes mid-run.
    ro.retry_budget_ratio = 0.3;
    ro.retry_budget_burst = 50.0;
    mz::ResilientClient client(session, ro);
    mz::Rng straggle_rng(0x57A6 + static_cast<std::uint64_t>(id));
    ResilienceRunResult local;

    while (mz::NowNanos() < t_end) {
      ++local.attempts;
      const bool straggle = straggle_rng.NextDouble(0.0, 1.0) < kStraggleP;
      const std::int64_t t0 = mz::NowNanos();
      try {
        client.Eval([&](mz::Session& s, const mz::EvalOptions& eo, int lane) {
          if (straggle && lane == 0) {
            // Stall the primary lane only: the hedge lands on a different
            // replica in the scenario this models. Poll the token so a hedge
            // win releases the caller immediately.
            const std::int64_t stall_end = mz::NowNanos() + kStraggleNs;
            while (mz::NowNanos() < stall_end && !eo.cancel.stop_requested()) {
              std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
          }
          mz::Session::Scope scope(s);
          Pipeline(n, a.data(), b.data(), out[lane].data());
        });
        local.served_ms.push_back(static_cast<double>(mz::NowNanos() - t0) * 1e-6);
      } catch (const mz::Error&) {
        ++local.failures;
      }
    }

    std::lock_guard<std::mutex> lock(merge_mu);
    res.served_ms.insert(res.served_ms.end(), local.served_ms.begin(), local.served_ms.end());
    res.attempts += local.attempts;
    res.failures += local.failures;
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back(client_loop, c);
  }
  for (std::thread& th : threads) {
    th.join();
  }
  res.wall_s = static_cast<double>(mz::NowNanos() - t_start) * 1e-9;

  const mz::EvalStats::Snapshot agg = ctx.AggregateStats();
  res.retries = agg.retries;
  res.budget_exhausted = agg.retry_budget_exhausted;
  res.hedges = agg.hedges_launched;
  res.hedge_wins = agg.hedge_wins;
  return res;
}

void EmitClass(const std::string& config, const char* cls, const ClassSamples& s) {
  std::printf("  %-6s %-6s  %8zu reqs   lat p50/p95/p99 %8.3f %8.3f %8.3f ms   "
              "wait p50/p95/p99 %8.3f %8.3f %8.3f ms\n",
              config.c_str(), cls, s.lat_ms.size(), Pct(s.lat_ms, 50), Pct(s.lat_ms, 95),
              Pct(s.lat_ms, 99), Pct(s.wait_ms, 50), Pct(s.wait_ms, 95), Pct(s.wait_ms, 99));
  bench::Metric("loadgen_serving", "fairness", config, std::string(cls) + "_completions",
                static_cast<double>(s.lat_ms.size()));
  bench::Metric("loadgen_serving", "fairness", config, std::string(cls) + "_p50_ms",
                Pct(s.lat_ms, 50));
  bench::Metric("loadgen_serving", "fairness", config, std::string(cls) + "_p95_ms",
                Pct(s.lat_ms, 95));
  bench::Metric("loadgen_serving", "fairness", config, std::string(cls) + "_p99_ms",
                Pct(s.lat_ms, 99));
  bench::Metric("loadgen_serving", "fairness", config, std::string(cls) + "_wait_p50_ms",
                Pct(s.wait_ms, 50));
  bench::Metric("loadgen_serving", "fairness", config, std::string(cls) + "_wait_p95_ms",
                Pct(s.wait_ms, 95));
  bench::Metric("loadgen_serving", "fairness", config, std::string(cls) + "_wait_p99_ms",
                Pct(s.wait_ms, 99));
}

}  // namespace

int main() {
  mzvec::EnsureRegistered();

  bench::Title("Fairness: 4 chatty tenants (3 connections each) vs. 12 sparse tenants, "
               "one admission token");
  const long n_fair = std::max<long>(4096, bench::Scaled(16384));
  const long run_ms = std::max<long>(30, bench::Scaled(400));
  bench::Note("closed loop for " + std::to_string(run_ms) + " ms; zipf sizes " +
              std::to_string(n_fair) + "..." + std::to_string(8 * n_fair) +
              "; Jain index over per-tenant completions (16 tenants; FIFO floor with this "
              "mix is (4*3+12)^2 / (16*(4*9+12)) = 0.75)");
  for (bool drr : {true, false}) {
    const std::string config = drr ? "drr" : "fifo";
    FairnessResult r = RunFairness(drr, n_fair, run_ms);
    std::printf("  %-6s Jain over tenants %.3f   (%ld sessions churned)\n", config.c_str(),
                r.jain, r.sessions_created);
    EmitClass(config, "chatty", r.chatty);
    EmitClass(config, "sparse", r.sparse);
    bench::Metric("loadgen_serving", "fairness", config, "jain_tenant_index", r.jain);
    bench::Metric("loadgen_serving", "fairness", config, "sessions",
                  static_cast<double>(r.sessions_created));
  }

  bench::Title("Lone client vs. a 400 us batch window, open arrivals (mean 1.5 ms apart)");
  const int evals = static_cast<int>(std::max<long>(20, bench::Scaled(300)));
  bench::Note(std::to_string(evals) + " evaluations of a 1024-elem inline-class plan; the "
              "fixed window sleeps 400 us per rider-less leader, the adaptive window "
              "predicts no rider and skips the wait");
  for (bool adaptive : {false, true}) {
    const std::string config = adaptive ? "adaptive_window" : "fixed_window";
    // n deliberately NOT scaled: must stay inline-class at every bench scale.
    LoneClientResult r = RunLoneClient(adaptive, /*n=*/1024, evals);
    std::printf("  %-16s lat p50/p95/p99 %8.1f %8.1f %8.1f us   adapted window total %lld us"
                "   %lld dispatches\n",
                config.c_str(), Pct(r.lat_us, 50), Pct(r.lat_us, 95), Pct(r.lat_us, 99),
                static_cast<long long>(r.adapted_window_us),
                static_cast<long long>(r.dispatches));
    bench::Metric("loadgen_serving", "lone_client", config, "p50_us", Pct(r.lat_us, 50));
    bench::Metric("loadgen_serving", "lone_client", config, "p95_us", Pct(r.lat_us, 95));
    bench::Metric("loadgen_serving", "lone_client", config, "p99_us", Pct(r.lat_us, 99));
    bench::Metric("loadgen_serving", "lone_client", config, "adapted_window_us",
                  static_cast<double>(r.adapted_window_us));
  }

  bench::Title("Plan-cache byte budget (64 KiB): allocator-true vs. estimated accounting");
  const int templates = static_cast<int>(std::max<long>(64, bench::Scaled(192)));
  bench::Note(std::to_string(templates) + " distinct plan templates inserted; true "
              "accounting charges real heap footprints (capacity slack, allocator "
              "rounding), so the same budget holds fewer entries honestly");
  for (bool true_bytes : {true, false}) {
    const std::string config = true_bytes ? "true_bytes" : "estimate";
    CacheAccountingResult r = RunCacheAccounting(true_bytes, templates, /*n_base=*/2048);
    std::printf("  %-10s %6zu resident entries, %8zu charged bytes, %6lld evictions\n",
                config.c_str(), r.resident_entries, r.charged_bytes,
                static_cast<long long>(r.evictions));
    bench::Metric("loadgen_serving", "cache_accounting", config, "resident_entries",
                  static_cast<double>(r.resident_entries));
    bench::Metric("loadgen_serving", "cache_accounting", config, "charged_bytes",
                  static_cast<double>(r.charged_bytes));
    bench::Metric("loadgen_serving", "cache_accounting", config, "evictions",
                  static_cast<double>(r.evictions));
  }

  bench::Title("Deadline-bearing clients at ~12x overload: load shedding on vs. off");
  const long n_shed = std::max<long>(32768, bench::Scaled(131072));
  const long shed_run_ms = std::max<long>(50, bench::Scaled(400));
  const long deadline_us = 2000;
  bench::Note("12 closed-loop clients, one admission token, " + std::to_string(n_shed) +
              "-elem pooled plans, " + std::to_string(deadline_us) +
              " us deadlines for " + std::to_string(shed_run_ms) +
              " ms; goodput counts only deadline-met completions. Shedding rejects "
              "infeasible requests up front (clients pace retries on retry_after_us); "
              "the ablation queues everything and serves most of it late");
  for (bool shedding : {false, true}) {
    const std::string config = shedding ? "shedding_on" : "shedding_off";
    SheddingResult r = RunShedding(shedding, n_shed, deadline_us, shed_run_ms);
    const double goodput = static_cast<double>(r.met) / std::max(r.wall_s, 1e-9);
    const double shed_rate =
        static_cast<double>(r.shed) / std::max<double>(1.0, static_cast<double>(r.attempts));
    std::printf("  %-12s goodput %8.1f met/s   served p50/p99 %8.3f %8.3f ms   "
                "shed %5.1f%%   aborted %lld / %lld attempts\n",
                config.c_str(), goodput, Pct(r.served_ms, 50), Pct(r.served_ms, 99),
                100.0 * shed_rate, static_cast<long long>(r.aborted),
                static_cast<long long>(r.attempts));
    bench::Metric("loadgen_serving", "deadline_shedding", config, "goodput_met_per_s", goodput);
    bench::Metric("loadgen_serving", "deadline_shedding", config, "served_p50_ms",
                  Pct(r.served_ms, 50));
    bench::Metric("loadgen_serving", "deadline_shedding", config, "served_p99_ms",
                  Pct(r.served_ms, 99));
    bench::Metric("loadgen_serving", "deadline_shedding", config, "shed_rate", shed_rate);
    bench::Metric("loadgen_serving", "deadline_shedding", config, "aborted",
                  static_cast<double>(r.aborted));
    bench::Metric("loadgen_serving", "deadline_shedding", config, "attempts",
                  static_cast<double>(r.attempts));
  }

  bench::Title("Resilient clients at ~12x overload with 15% transient faults: "
               "naive vs. budgeted vs. budgeted+hedged retries");
  const long n_res = std::max<long>(32768, bench::Scaled(131072));
  const long res_run_ms = std::max<long>(50, bench::Scaled(400));
  bench::Note("12 clients, one admission token, " + std::to_string(n_res) +
              "-elem pooled plans, 2000 us deadlines for " + std::to_string(res_run_ms) +
              " ms. Naive retries instantly and deadline-blind (the retry storm); "
              "budgeted propagates deadlines, paces on retry_after_us, and spends a "
              "token-bucket retry budget; +hedged adds tail hedging from the same budget");
  for (RetryPolicy policy :
       {RetryPolicy::kNaive, RetryPolicy::kBudgeted, RetryPolicy::kBudgetedHedged}) {
    const std::string config = policy == RetryPolicy::kNaive      ? "naive"
                               : policy == RetryPolicy::kBudgeted ? "budgeted"
                                                                  : "budgeted_hedged";
    ResilienceRunResult r = RunResilientOverload(policy, n_res, /*deadline_us=*/2000, res_run_ms);
    const double goodput = static_cast<double>(r.met) / std::max(r.wall_s, 1e-9);
    std::printf("  %-16s goodput %8.1f met/s   served p50/p99 %8.3f %8.3f ms   "
                "%lld served, %lld failed / %lld requests   %lld retries "
                "(%lld budget-stopped)   %lld hedges (%lld wins)\n",
                config.c_str(), goodput, Pct(r.served_ms, 50), Pct(r.served_ms, 99),
                static_cast<long long>(r.served_ms.size()), static_cast<long long>(r.failures),
                static_cast<long long>(r.attempts), static_cast<long long>(r.retries),
                static_cast<long long>(r.budget_exhausted), static_cast<long long>(r.hedges),
                static_cast<long long>(r.hedge_wins));
    bench::Metric("loadgen_serving", "resilience_retry", config, "goodput_met_per_s", goodput);
    bench::Metric("loadgen_serving", "resilience_retry", config, "served_p50_ms",
                  Pct(r.served_ms, 50));
    bench::Metric("loadgen_serving", "resilience_retry", config, "served_p99_ms",
                  Pct(r.served_ms, 99));
    bench::Metric("loadgen_serving", "resilience_retry", config, "requests",
                  static_cast<double>(r.attempts));
    bench::Metric("loadgen_serving", "resilience_retry", config, "failures",
                  static_cast<double>(r.failures));
    bench::Metric("loadgen_serving", "resilience_retry", config, "retries",
                  static_cast<double>(r.retries));
    bench::Metric("loadgen_serving", "resilience_retry", config, "budget_exhausted",
                  static_cast<double>(r.budget_exhausted));
    bench::Metric("loadgen_serving", "resilience_retry", config, "hedges",
                  static_cast<double>(r.hedges));
  }

  bench::Title("Tail hedging vs. 5 ms primary-lane stragglers (~8% of attempts), "
               "uncontended context");
  const long hedge_run_ms = std::max<long>(50, bench::Scaled(400));
  bench::Note("2 clients, inline-class 1024-elem plans for " + std::to_string(hedge_run_ms) +
              " ms; stalls poll the cancel token. The hedge timer arms at the online "
              "p75 latency estimate, the winner cancels the loser lane, hedges debit "
              "the shared retry budget");
  for (bool hedged : {false, true}) {
    const std::string config = hedged ? "hedge_on" : "hedge_off";
    // n deliberately NOT scaled: the straggle/service ratio is the subject.
    ResilienceRunResult r = RunHedging(hedged, /*n=*/1024, hedge_run_ms);
    std::printf("  %-10s served p50/p95/p99 %8.3f %8.3f %8.3f ms   %lld evals   "
                "%lld hedges (%lld wins)\n",
                config.c_str(), Pct(r.served_ms, 50), Pct(r.served_ms, 95),
                Pct(r.served_ms, 99), static_cast<long long>(r.served_ms.size()),
                static_cast<long long>(r.hedges), static_cast<long long>(r.hedge_wins));
    bench::Metric("loadgen_serving", "resilience_hedge", config, "p50_ms", Pct(r.served_ms, 50));
    bench::Metric("loadgen_serving", "resilience_hedge", config, "p95_ms", Pct(r.served_ms, 95));
    bench::Metric("loadgen_serving", "resilience_hedge", config, "p99_ms", Pct(r.served_ms, 99));
    bench::Metric("loadgen_serving", "resilience_hedge", config, "evals",
                  static_cast<double>(r.served_ms.size()));
    bench::Metric("loadgen_serving", "resilience_hedge", config, "hedges",
                  static_cast<double>(r.hedges));
    bench::Metric("loadgen_serving", "resilience_hedge", config, "hedge_wins",
                  static_cast<double>(r.hedge_wins));
  }
  return 0;
}
