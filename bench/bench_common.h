// Shared harness for the paper-reproduction benches: timing helpers and
// table printing. Each bench binary regenerates one figure or table from the
// paper's evaluation (§8); rows/series are printed in the same shape the
// paper reports so EXPERIMENTS.md can compare them side by side.
//
// Scale: sizes default to a 2-core container (hundreds of MB, seconds per
// measurement) and can be scaled with MOZART_BENCH_SCALE (float multiplier).
#ifndef MOZART_BENCH_BENCH_COMMON_H_
#define MOZART_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/timer.h"

namespace bench {

inline double Scale() {
  static const double scale = [] {
    const char* s = std::getenv("MOZART_BENCH_SCALE");
    return s != nullptr ? std::atof(s) : 1.0;
  }();
  return scale;
}

inline long Scaled(long base) { return std::max<long>(1, static_cast<long>(base * Scale())); }

// Thread counts to sweep: {1, 2, 4} capped at 2x the machine (the paper
// sweeps 1-16 on a 40-core box; we keep the oversubscribed point to show the
// flattening).
inline std::vector<int> ThreadSweep() {
  std::vector<int> sweep = {1, 2, 4};
  int cap = mz::NumLogicalCpus() * 2;
  sweep.erase(std::remove_if(sweep.begin(), sweep.end(), [&](int t) { return t > cap; }),
              sweep.end());
  return sweep;
}

// Median-of-k wall time for fn().
inline double TimeSeconds(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    mz::WallTimer timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void Title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& note) { std::printf("  %s\n", note.c_str()); }

}  // namespace bench

#endif  // MOZART_BENCH_BENCH_COMMON_H_
