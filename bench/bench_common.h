// Shared harness for the paper-reproduction benches: timing helpers, table
// printing, and machine-readable metric output. Each bench binary
// regenerates one figure or table from the paper's evaluation (§8);
// rows/series are printed in the same shape the paper reports so
// EXPERIMENTS.md can compare them side by side.
//
// Scale: sizes default to a 2-core container (hundreds of MB, seconds per
// measurement) and can be scaled with MOZART_BENCH_SCALE (float multiplier).
//
// Machine-readable output: with MOZART_BENCH_JSON=<path> set, every
// Metric(...) call writes one JSON object per line (JSONL) to <path>; the
// file is truncated once per process, so each bench run replaces its own
// output. scripts/bench.sh runs the fig/table benches with per-bench paths
// and assembles the lines into BENCH_<tag>.json at the repo root, seeding
// the perf trajectory that future PRs regress-check against.
#ifndef MOZART_BENCH_BENCH_COMMON_H_
#define MOZART_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/timer.h"

namespace bench {

inline double Scale() {
  static const double scale = [] {
    const char* s = std::getenv("MOZART_BENCH_SCALE");
    return s != nullptr ? std::atof(s) : 1.0;
  }();
  return scale;
}

inline long Scaled(long base) { return std::max<long>(1, static_cast<long>(base * Scale())); }

// Thread counts to sweep: {1, 2, 4} capped at 2x the machine (the paper
// sweeps 1-16 on a 40-core box; we keep the oversubscribed point to show the
// flattening).
inline std::vector<int> ThreadSweep() {
  std::vector<int> sweep = {1, 2, 4};
  int cap = mz::NumLogicalCpus() * 2;
  sweep.erase(std::remove_if(sweep.begin(), sweep.end(), [&](int t) { return t > cap; }),
              sweep.end());
  return sweep;
}

// Median-of-k wall time for fn().
inline double TimeSeconds(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    mz::WallTimer timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void Title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& note) { std::printf("  %s\n", note.c_str()); }

// ---- machine-readable metrics (MOZART_BENCH_JSON) ----

namespace internal {

inline std::FILE* JsonFile() {
  // "w": each bench process owns its output file outright (scripts/bench.sh
  // gives every binary its own path), so repeated runs — e.g. the ctest
  // smoke entry with its pinned path — replace rather than accumulate.
  static std::FILE* file = [] () -> std::FILE* {
    const char* path = std::getenv("MOZART_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') {
      return nullptr;
    }
    return std::fopen(path, "w");
  }();
  return file;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace internal

// Writes {"bench","workload","config","metric","value"} as one JSONL line
// to $MOZART_BENCH_JSON; a no-op when the variable is unset. `value` is
// whatever unit the metric name says (seconds, nanoseconds, counts, ...).
inline void Metric(const std::string& bench_name, const std::string& workload,
                   const std::string& config, const std::string& metric, double value) {
  std::FILE* file = internal::JsonFile();
  if (file == nullptr) {
    return;
  }
  std::fprintf(file, "{\"bench\":\"%s\",\"workload\":\"%s\",\"config\":\"%s\",\"metric\":\"%s\",\"value\":%.17g,\"scale\":%g}\n",
               internal::JsonEscape(bench_name).c_str(), internal::JsonEscape(workload).c_str(),
               internal::JsonEscape(config).c_str(), internal::JsonEscape(metric).c_str(), value,
               Scale());
  std::fflush(file);
}

}  // namespace bench

#endif  // MOZART_BENCH_BENCH_COMMON_H_
