// Figure 1: Black Scholes with MKL, Weld, and MKL+Mozart on 1-N threads.
//
// Paper shape: un-annotated MKL stops scaling around the memory-bandwidth
// knee; Mozart keeps scaling by pipelining the 27-operator chain through the
// cache; Mozart also beats the Weld-style fused baseline where the library's
// hand-optimized kernels win back the compiler's fusion advantage (§2.1).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "vecmath/vecmath.h"
#include "workloads/numerical.h"

int main() {
  bench::Title("Figure 1: Black Scholes (vecmath as MKL) — runtime (s), 1..N threads");
  const long n = bench::Scaled(4 << 20);
  workloads::BlackScholes w(n, 42);
  std::printf("  n = %ld doubles/array (%.0f MB working set)\n", n,
              static_cast<double>(n) * 8 * 12 / 1e6);
  std::printf("  %-8s %12s %12s %12s %14s\n", "threads", "MKL", "Weld(fused)", "Mozart",
              "Mozart/MKL spdup");

  for (int threads : bench::ThreadSweep()) {
    vecmath::SetNumThreads(threads);
    double t_base = bench::TimeSeconds([&] { w.RunBase(); });
    double t_fused = bench::TimeSeconds([&] { w.RunFused(threads); });
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    mz::Runtime rt(opts);
    double t_mozart = bench::TimeSeconds([&] { w.RunMozart(&rt); });
    std::printf("  %-8d %12.4f %12.4f %12.4f %13.2fx\n", threads, t_base, t_fused, t_mozart,
                t_base / t_mozart);
  }
  vecmath::SetNumThreads(0);
  return 0;
}
