// Figure 6: effect of batch size on Black Scholes (element = one double) and
// nBody (element = one matrix row), with the runtime's L2 heuristic choice
// marked.
//
// Paper shape: a U-curve — tiny batches pay per-batch overhead, huge batches
// stop fitting in cache and lose the pipelining benefit; the heuristic lands
// within ~10% of the best point.
//
// Extension (ISSUE 5): a footprint-blowup workload — a narrow producer stage
// (small per-element footprint → large batches) feeding a wide consumer
// stage across an elided boundary (many live arrays → the carried batches
// overflow L2 several times over). Sweeps the single global heuristic
// (batch_per_stage=false: the consumer inherits the producer's granularity)
// against footprint-aware per-stage batching (the carried pieces re-batch
// to the consumer's size), plus the no-elision baseline. Emits
// MOZART_BENCH_JSON metrics for BENCH_PR5.json.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/cpu.h"
#include "core/client.h"
#include "core/runtime.h"
#include "vecmath/annotated.h"
#include "workloads/numerical.h"

namespace {

template <typename W>
void Sweep(const char* name, W* w, const std::vector<long>& batches,
           std::int64_t heuristic_batch) {
  std::printf("\n  %s (heuristic batch = %lld elements)\n", name,
              static_cast<long long>(heuristic_batch));
  double best = 1e100;
  std::vector<double> times;
  for (long batch : batches) {
    mz::RuntimeOptions opts;
    opts.batch_elems_override = batch;
    mz::Runtime rt(opts);
    double t = bench::TimeSeconds([&] { w->RunMozart(&rt); });
    times.push_back(t);
    best = std::min(best, t);
  }
  // Heuristic (auto) run for the marked point.
  mz::Runtime auto_rt;
  double t_auto = bench::TimeSeconds([&] { w->RunMozart(&auto_rt); });
  best = std::min(best, t_auto);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    std::printf("    batch %-10ld norm-runtime %5.2f\n", batches[i], times[i] / best);
  }
  std::printf("    batch auto(%-5lld) norm-runtime %5.2f   <-- heuristic (within %.0f%% of best)\n",
              static_cast<long long>(heuristic_batch), t_auto / best,
              100.0 * (t_auto / best - 1.0));
}

// ---- footprint blowup: narrow producer → wide consumer over one carry ----

const mz::Annotated<void(long)>& Tick() {
  static long sink = 0;
  static const mz::Annotated<void(long)> tick(
      [](long k) { sink += k; },
      mz::AnnotationBuilder("fig6.tick").Arg("k", mz::NoSplit()).Build());
  return tick;
}

struct FootprintBlowup {
  long n;
  int wide;
  int passes;
  std::vector<double> a, t, o;
  std::vector<std::vector<double>> b;

  FootprintBlowup(long n_in, int wide_in, int passes_in)
      : n(n_in), wide(wide_in), passes(passes_in) {
    a.assign(static_cast<std::size_t>(n), 1.000001);
    t.assign(static_cast<std::size_t>(n), 0.0);
    o.assign(static_cast<std::size_t>(n), 0.0);
    for (int k = 0; k < wide; ++k) {
      b.emplace_back(static_cast<std::size_t>(n), 1e-7 * (k + 1));
    }
  }

  void Run(mz::Runtime* rt) {
    mz::RuntimeScope scope(rt);
    // Stage A (narrow, ~16 B/elem): batches of ~|L2|/16 elements.
    mzvec::Copy(n, a.data(), t.data());
    Tick()(1);
    // Stage B (wide, ~(2+wide)×8 B/elem): t carries across the boundary
    // and the stage sweeps the whole b-set `passes` times, so every b[k]
    // is re-touched after (wide-1) other arrays' worth of traffic. With
    // the consumer's own footprint-derived batch that reuse distance fits
    // L2; at the producer's inherited granularity the batch working set is
    // several MB and every revisit streams from the outer levels — the
    // cache-thrash the per-stage model exists to avoid.
    mzvec::Add(n, t.data(), b[0].data(), o.data());
    for (int p = 0; p < passes; ++p) {
      for (int k = (p == 0 ? 1 : 0); k < wide; ++k) {
        mzvec::Add(n, o.data(), b[k].data(), o.data());
      }
    }
    rt->Evaluate();
  }
};

void RunFootprintBlowup(long n, int wide, int passes, int threads) {
  std::printf("\n  (c) footprint blowup — narrow producer (16 B/elem) -> wide consumer (%d B/elem)\n",
              (2 + wide) * 8);
  std::printf("      n=%ld passes=%d threads=%d\n", n, passes, threads);
  struct Config {
    const char* name;
    bool elide;
    bool per_stage;
  };
  constexpr Config kConfigs[] = {
      {"-elide", false, true},          // merge + re-split: correct batch, boundary cost
      {"+elide,global", true, false},   // inherit producer granularity (pre-ISSUE-5)
      {"+elide,per-stage", true, true}, // re-batch carried pieces to the stage's size
  };
  const char* workload = "footprint-blowup";
  double base_seconds = 0;
  for (const Config& cfg : kConfigs) {
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    opts.elide_boundaries = cfg.elide;
    opts.batch_per_stage = cfg.per_stage;
    mz::Runtime rt(opts);
    FootprintBlowup w(n, wide, passes);
    w.Run(&rt);  // warm up (touches every page)
    rt.stats().Reset();
    // Median of 5: single-core containers jitter and the configs differ by
    // tens of ms, so the default 3 reps under-resolve the gap.
    double seconds = bench::TimeSeconds([&] { w.Run(&rt); }, /*reps=*/5);
    mz::EvalStats::Snapshot s = rt.stats().Take();
    if (base_seconds == 0) {
      base_seconds = seconds;
    }
    std::printf("      %-18s %8.4fs  norm %5.2f  rebatched %lld  footprint<=%lld KB\n", cfg.name,
                seconds, seconds / base_seconds, static_cast<long long>(s.stages_rebatched),
                static_cast<long long>(s.footprint_bytes_max / 1024));
    bench::Metric("fig6_footprint", workload, cfg.name, "seconds", seconds);
    bench::Metric("fig6_footprint", workload, cfg.name, "stages_rebatched",
                  static_cast<double>(s.stages_rebatched));
    bench::Metric("fig6_footprint", workload, cfg.name, "footprint_bytes_max",
                  static_cast<double>(s.footprint_bytes_max));
    bench::Metric("fig6_footprint", workload, cfg.name, "boundaries_elided",
                  static_cast<double>(s.boundaries_elided));
  }
}

}  // namespace

int main() {
  bench::Title("Figure 6: batch-size sweep (normalized runtime; lower is better)");
  std::printf("  L2 = %zu KB\n", mz::L2CacheBytes() / 1024);

  // Black Scholes: 12 arrays in flight, sized so each far exceeds the LLC —
  // the regime the batch-size trade-off is about (the paper runs 11 GB).
  workloads::BlackScholes bs(bench::Scaled(16 << 20), 1);
  std::int64_t bs_heur = static_cast<std::int64_t>(mz::L2CacheBytes()) / (12 * 8);
  Sweep("(a) Black Scholes — element = 1 double", &bs,
        {512, 2048, 8192, 32768, 131072, 524288, 2097152, 8388608}, bs_heur);

  // nBody: elements are matrix rows of n doubles (n = 2048 → 16 KB rows).
  const long n = bench::Scaled(2048);
  workloads::NBody nb(n, 1, 3);
  std::int64_t nb_heur = static_cast<std::int64_t>(mz::L2CacheBytes()) /
                         (6 * n * static_cast<long>(sizeof(double)));
  Sweep("(b) nBody — element = 1 matrix row", &nb, {1, 4, 16, 64, 256, 1024, 2048},
        std::max<std::int64_t>(nb_heur, 1));

  // (c) the ISSUE 5 workload: small input elements, wide consumer rows —
  // global vs. per-stage batching across an elided boundary.
  RunFootprintBlowup(bench::Scaled(4 << 20), /*wide=*/12, /*passes=*/4, mz::NumLogicalCpus());
  return 0;
}
