// Figure 6: effect of batch size on Black Scholes (element = one double) and
// nBody (element = one matrix row), with the runtime's L2 heuristic choice
// marked.
//
// Paper shape: a U-curve — tiny batches pay per-batch overhead, huge batches
// stop fitting in cache and lose the pipelining benefit; the heuristic lands
// within ~10% of the best point.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/cpu.h"
#include "core/runtime.h"
#include "workloads/numerical.h"

namespace {

template <typename W>
void Sweep(const char* name, W* w, const std::vector<long>& batches,
           std::int64_t heuristic_batch) {
  std::printf("\n  %s (heuristic batch = %lld elements)\n", name,
              static_cast<long long>(heuristic_batch));
  double best = 1e100;
  std::vector<double> times;
  for (long batch : batches) {
    mz::RuntimeOptions opts;
    opts.batch_elems_override = batch;
    mz::Runtime rt(opts);
    double t = bench::TimeSeconds([&] { w->RunMozart(&rt); });
    times.push_back(t);
    best = std::min(best, t);
  }
  // Heuristic (auto) run for the marked point.
  mz::Runtime auto_rt;
  double t_auto = bench::TimeSeconds([&] { w->RunMozart(&auto_rt); });
  best = std::min(best, t_auto);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    std::printf("    batch %-10ld norm-runtime %5.2f\n", batches[i], times[i] / best);
  }
  std::printf("    batch auto(%-5lld) norm-runtime %5.2f   <-- heuristic (within %.0f%% of best)\n",
              static_cast<long long>(heuristic_batch), t_auto / best,
              100.0 * (t_auto / best - 1.0));
}

}  // namespace

int main() {
  bench::Title("Figure 6: batch-size sweep (normalized runtime; lower is better)");
  std::printf("  L2 = %zu KB\n", mz::L2CacheBytes() / 1024);

  // Black Scholes: 12 arrays in flight, sized so each far exceeds the LLC —
  // the regime the batch-size trade-off is about (the paper runs 11 GB).
  workloads::BlackScholes bs(bench::Scaled(16 << 20), 1);
  std::int64_t bs_heur = static_cast<std::int64_t>(mz::L2CacheBytes()) / (12 * 8);
  Sweep("(a) Black Scholes — element = 1 double", &bs,
        {512, 2048, 8192, 32768, 131072, 524288, 2097152, 8388608}, bs_heur);

  // nBody: elements are matrix rows of n doubles (n = 2048 → 16 KB rows).
  const long n = bench::Scaled(2048);
  workloads::NBody nb(n, 1, 3);
  std::int64_t nb_heur = static_cast<std::int64_t>(mz::L2CacheBytes()) /
                         (6 * n * static_cast<long>(sizeof(double)));
  Sweep("(b) nBody — element = 1 matrix row", &nb, {1, 4, 16, 64, 256, 1024, 2048},
        std::max<std::int64_t>(nb_heur, 1));
  return 0;
}
