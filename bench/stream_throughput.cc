// Streaming throughput + per-window latency (ISSUE 7): a fixed vecmath
// chain (mul, add, sum-reduce) over a chunked stream, windowed by
// Runtime::EvalStream with a plan cache wired up so every steady-state
// firing instantiates the first firing's template. Reports, per window
// size:
//   - seconds          total wall time for the whole stream (regression gate)
//   - elems_per_sec    sustained throughput
//   - p50/p95/p99 ns   per-window firing latency (capture -> result in hand)
//   - plan_cache_hits  should be firings - 1 in steady state
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/plan_cache.h"
#include "core/runtime.h"
#include "core/stream.h"
#include "vecmath/annotated.h"

namespace {

using Vec = std::vector<double>;

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main() {
  mzvec::EnsureRegistered();
  bench::Title("Streaming: sustained throughput + per-window latency (vec chain)");

  const long total = bench::Scaled(1L << 25);  // elements per stream
  const long chunk = std::max<long>(1, total / 192);  // misaligned with every window

  for (long window : {total / 128, total / 32, total / 8}) {
    if (window <= 0) continue;
    mz::PlanCache cache;
    mz::RuntimeOptions o;
    o.num_threads = 0;  // all logical CPUs
    o.plan_cache = &cache;
    mz::Runtime rt(o);

    mz::StreamSource src;
    {
      Vec data(static_cast<std::size_t>(chunk));
      for (long i = 0; i < chunk; ++i) data[static_cast<std::size_t>(i)] = static_cast<double>(i % 97);
      for (long off = 0; off < total; off += chunk) {
        long n = std::min(chunk, total - off);
        src.Push(mz::Value::Make<Vec>(Vec(data.begin(), data.begin() + n)));
      }
      src.Close();
    }

    Vec out(static_cast<std::size_t>(window));
    mz::StreamAccumulator acc("ReduceAdd", {}, &rt.stats());
    std::vector<double> lat_ns;
    lat_ns.reserve(static_cast<std::size_t>(total / window + 2));

    mz::WallTimer timer;
    std::int64_t firings =
        rt.EvalStream(src, {.window = window}, [&](const mz::Value& win, std::int64_t) {
          mz::WallTimer t;
          const Vec& v = win.As<Vec>();
          const long n = static_cast<long>(v.size());
          mzvec::MulC(n, v.data(), 3.0, out.data());
          mzvec::AddC(n, out.data(), 1.0, out.data());
          acc.Fold(mz::Value::Make<double>(mzvec::Sum(n, out.data()).get()));
          lat_ns.push_back(t.ElapsedSeconds() * 1e9);
        });
    double secs = timer.ElapsedSeconds();

    mz::EvalStats::Snapshot s = rt.stats().Take();
    const double p50 = Percentile(lat_ns, 0.50);
    const double p95 = Percentile(lat_ns, 0.95);
    const double p99 = Percentile(lat_ns, 0.99);
    std::printf(
        "  window %9ld: %5lld firings  %7.3f s  %8.1f Melems/s  "
        "p50 %7.0f us  p95 %7.0f us  p99 %7.0f us  cache %lld/%lld\n",
        window, static_cast<long long>(firings), secs,
        static_cast<double>(total) / secs / 1e6, p50 / 1e3, p95 / 1e3, p99 / 1e3,
        static_cast<long long>(s.plan_cache_hits), static_cast<long long>(firings));

    const std::string cfg = "window=" + std::to_string(window);
    bench::Metric("stream_throughput", "vec_chain", cfg, "seconds", secs);
    bench::Metric("stream_throughput", "vec_chain", cfg, "elems_per_sec",
                  static_cast<double>(total) / secs);
    bench::Metric("stream_throughput", "vec_chain", cfg, "window_latency_p50_ns", p50);
    bench::Metric("stream_throughput", "vec_chain", cfg, "window_latency_p95_ns", p95);
    bench::Metric("stream_throughput", "vec_chain", cfg, "window_latency_p99_ns", p99);
    bench::Metric("stream_throughput", "vec_chain", cfg, "plan_cache_hits",
                  static_cast<double>(s.plan_cache_hits));
    bench::Metric("stream_throughput", "vec_chain", cfg, "incremental_merges",
                  static_cast<double>(s.incremental_merges));
  }
  bench::Note("steady state is re-plan-free: cache hits = firings - 1 per window size");
  return 0;
}
