// Figure 7: compute- vs memory-boundedness.
//  (a) relative intensity (cycles per byte) of vecmath operators measured in
//      a tight loop over an L2-resident array — add/mul are cheap, exp is
//      ~an order of magnitude more expensive per byte;
//  (b) Mozart's speedup over the un-annotated parallel library for a
//      10-call chain of each operator: the lower the intensity, the more
//      memory-bound the chain, the bigger the pipelining win — and the win
//      grows with threads as bandwidth saturates.
//  (c) inter-stage overlap: the same chains under the -pipe ablation (one
//      stage per call, so every boundary is a carried stage handoff) with
//      ExecOptions::pipeline_stages on vs off. Overlapped regions keep each
//      batch cache-resident across the whole chain; the lower the operator's
//      intensity, the bigger the win — high-intensity chains are
//      compute-bound and the two schedules converge.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/aligned.h"
#include "common/cpu.h"
#include "core/runtime.h"
#include "vecmath/annotated.h"
#include "vecmath/vecmath.h"

namespace {

using UnaryLibFn = void (*)(long, const double*, double*);

struct Op {
  const char* name;
  UnaryLibFn lib;
  const mzvec::UnaryFn* wrapped;
};

// Unary proxies for the paper's binary add/mul/div (same arithmetic per
// element; unary keeps the chain uniform).
const Op kOps[] = {
    {"add", vecmath::Copy, &mzvec::Copy},  // streaming move: lowest intensity
    {"mul", vecmath::Sqr, &mzvec::Sqr},
    {"div", vecmath::Inv, &mzvec::Inv},
    {"sqrt", vecmath::Sqrt, &mzvec::Sqrt},
    {"erf", vecmath::Erf, &mzvec::Erf},
    {"exp", vecmath::Exp, &mzvec::Exp},
};

}  // namespace

int main() {
  bench::Title("Figure 7a: relative intensity (cycles/byte proxy, L2-resident tight loop)");
  const long small_n = static_cast<long>(mz::L2CacheBytes() / (4 * sizeof(double)));
  mz::AlignedBuffer<double> a(static_cast<std::size_t>(small_n));
  mz::AlignedBuffer<double> b(static_cast<std::size_t>(small_n));
  a.Fill(0.73);
  vecmath::SetNumThreads(1);
  double base_time = 0;
  for (const Op& op : kOps) {
    double t = bench::TimeSeconds([&] {
      for (int r = 0; r < 64; ++r) {
        op.lib(small_n, a.data(), b.data());
      }
    });
    if (base_time == 0) {
      base_time = t;
    }
    std::printf("  %-6s relative intensity %6.2f\n", op.name, t / base_time);
  }

  bench::Title("Figure 7b: Mozart speedup over parallel library, 10-call chain per operator");
  const long n = bench::Scaled(8 << 20);
  mz::AlignedBuffer<double> src(static_cast<std::size_t>(n));
  mz::AlignedBuffer<double> dst(static_cast<std::size_t>(n));
  src.Fill(0.73);
  const int kChain = 10;
  std::printf("  %-6s", "op");
  for (int threads : bench::ThreadSweep()) {
    std::printf("      t=%d", threads);
  }
  std::printf("\n");
  for (const Op& op : kOps) {
    std::printf("  %-6s", op.name);
    for (int threads : bench::ThreadSweep()) {
      vecmath::SetNumThreads(threads);
      double t_base = bench::TimeSeconds([&] {
        op.lib(n, src.data(), dst.data());
        for (int c = 1; c < kChain; ++c) {
          op.lib(n, dst.data(), dst.data());
        }
      });
      mz::RuntimeOptions opts;
      opts.num_threads = threads;
      mz::Runtime rt(opts);
      double t_moz = bench::TimeSeconds([&] {
        mz::RuntimeScope scope(&rt);
        (*op.wrapped)(n, src.data(), dst.data());
        for (int c = 1; c < kChain; ++c) {
          (*op.wrapped)(n, dst.data(), dst.data());
        }
        rt.Evaluate();
      });
      std::printf("  %5.2fx", t_base / t_moz);
    }
    std::printf("\n");
  }
  vecmath::SetNumThreads(0);

  bench::Title("Figure 7c: inter-stage overlap (pipeline_stages) on a carried stage chain");
  vecmath::SetNumThreads(1);  // Mozart supplies the parallelism
  const int kStages = 6;
  struct Config {
    const char* name;
    bool pipelined;
  };
  const Config kConfigs[] = {{"pipelined", true}, {"unpipelined", false}};
  std::printf("  %-6s  %11s  %11s  %7s  %7s  %10s\n", "op", "pipelined", "unpipelined",
              "ratio", "regions", "overlap ms");
  for (const Op& op : kOps) {
    double secs[2] = {0, 0};
    std::int64_t regions = 0;
    double overlap_ms = 0;
    for (int ci = 0; ci < 2; ++ci) {
      const Config& cfg = kConfigs[ci];
      mz::RuntimeOptions opts;
      opts.pipeline = false;  // -pipe: one stage per call → a kStages-deep region
      opts.pipeline_stages = cfg.pipelined;
      mz::Runtime rt(opts);
      auto run = [&] {
        mz::RuntimeScope scope(&rt);
        (*op.wrapped)(n, src.data(), dst.data());
        for (int c = 1; c < kStages; ++c) {
          (*op.wrapped)(n, dst.data(), dst.data());
        }
        rt.Evaluate();
      };
      run();  // warm-up
      rt.stats().Reset();
      double t = bench::TimeSeconds(run, /*reps=*/3);
      mz::EvalStats::Snapshot s = rt.stats().Take();
      secs[ci] = t;
      if (cfg.pipelined) {
        regions = s.pipeline_regions;
        overlap_ms = static_cast<double>(s.pipeline_overlap_ns) / 1e6;
      }
      bench::Metric("fig7_pipeline", op.name, cfg.name, "seconds", t);
      bench::Metric("fig7_pipeline", op.name, cfg.name, "pipeline_regions",
                    static_cast<double>(s.pipeline_regions));
      bench::Metric("fig7_pipeline", op.name, cfg.name, "pipeline_overlap_ms",
                    static_cast<double>(s.pipeline_overlap_ns) / 1e6);
      bench::Metric("fig7_pipeline", op.name, cfg.name, "fill_flush_ms",
                    static_cast<double>(s.fill_flush_ns) / 1e6);
    }
    std::printf("  %-6s  %9.4fs  %9.4fs  %6.2fx  %7lld  %10.2f\n", op.name, secs[0], secs[1],
                secs[1] / secs[0], static_cast<long long>(regions), overlap_ms);
  }
  vecmath::SetNumThreads(0);
  return 0;
}
