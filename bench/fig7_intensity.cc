// Figure 7: compute- vs memory-boundedness.
//  (a) relative intensity (cycles per byte) of vecmath operators measured in
//      a tight loop over an L2-resident array — add/mul are cheap, exp is
//      ~an order of magnitude more expensive per byte;
//  (b) Mozart's speedup over the un-annotated parallel library for a
//      10-call chain of each operator: the lower the intensity, the more
//      memory-bound the chain, the bigger the pipelining win — and the win
//      grows with threads as bandwidth saturates.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/aligned.h"
#include "common/cpu.h"
#include "core/runtime.h"
#include "vecmath/annotated.h"
#include "vecmath/vecmath.h"

namespace {

using UnaryLibFn = void (*)(long, const double*, double*);

struct Op {
  const char* name;
  UnaryLibFn lib;
  const mzvec::UnaryFn* wrapped;
};

// Unary proxies for the paper's binary add/mul/div (same arithmetic per
// element; unary keeps the chain uniform).
const Op kOps[] = {
    {"add", vecmath::Copy, &mzvec::Copy},  // streaming move: lowest intensity
    {"mul", vecmath::Sqr, &mzvec::Sqr},
    {"div", vecmath::Inv, &mzvec::Inv},
    {"sqrt", vecmath::Sqrt, &mzvec::Sqrt},
    {"erf", vecmath::Erf, &mzvec::Erf},
    {"exp", vecmath::Exp, &mzvec::Exp},
};

}  // namespace

int main() {
  bench::Title("Figure 7a: relative intensity (cycles/byte proxy, L2-resident tight loop)");
  const long small_n = static_cast<long>(mz::L2CacheBytes() / (4 * sizeof(double)));
  mz::AlignedBuffer<double> a(static_cast<std::size_t>(small_n));
  mz::AlignedBuffer<double> b(static_cast<std::size_t>(small_n));
  a.Fill(0.73);
  vecmath::SetNumThreads(1);
  double base_time = 0;
  for (const Op& op : kOps) {
    double t = bench::TimeSeconds([&] {
      for (int r = 0; r < 64; ++r) {
        op.lib(small_n, a.data(), b.data());
      }
    });
    if (base_time == 0) {
      base_time = t;
    }
    std::printf("  %-6s relative intensity %6.2f\n", op.name, t / base_time);
  }

  bench::Title("Figure 7b: Mozart speedup over parallel library, 10-call chain per operator");
  const long n = bench::Scaled(8 << 20);
  mz::AlignedBuffer<double> src(static_cast<std::size_t>(n));
  mz::AlignedBuffer<double> dst(static_cast<std::size_t>(n));
  src.Fill(0.73);
  const int kChain = 10;
  std::printf("  %-6s", "op");
  for (int threads : bench::ThreadSweep()) {
    std::printf("      t=%d", threads);
  }
  std::printf("\n");
  for (const Op& op : kOps) {
    std::printf("  %-6s", op.name);
    for (int threads : bench::ThreadSweep()) {
      vecmath::SetNumThreads(threads);
      double t_base = bench::TimeSeconds([&] {
        op.lib(n, src.data(), dst.data());
        for (int c = 1; c < kChain; ++c) {
          op.lib(n, dst.data(), dst.data());
        }
      });
      mz::RuntimeOptions opts;
      opts.num_threads = threads;
      mz::Runtime rt(opts);
      double t_moz = bench::TimeSeconds([&] {
        mz::RuntimeScope scope(&rt);
        (*op.wrapped)(n, src.data(), dst.data());
        for (int c = 1; c < kChain; ++c) {
          (*op.wrapped)(n, dst.data(), dst.data());
        }
        rt.Evaluate();
      });
      std::printf("  %5.2fx", t_base / t_moz);
    }
    std::printf("\n");
  }
  vecmath::SetNumThreads(0);
  return 0;
}
