// Figure 4j-m: the same numerical workloads against the *already-parallel*
// library (MKL mode): the base gets the same thread count as Mozart, so any
// Mozart win is pure data-movement optimization (pipelining), not
// parallelization.
//
// Paper shape: 4.7x (Black Scholes), 2.1x (Haversine), 2.0x (nBody), 2.7x
// (Shallow Water) on 16 threads; at 1-2 threads the gap is smaller because
// memory bandwidth is not yet saturated.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "matrix/matrix.h"
#include "vecmath/vecmath.h"
#include "workloads/numerical.h"

namespace {

template <typename W>
void RunSeries(const char* name, W* w, int num_operators) {
  std::printf("\n  (%s) — %d library calls, n = %ld\n", name, num_operators, w->size());
  for (int threads : bench::ThreadSweep()) {
    vecmath::SetNumThreads(threads);  // MKL parallelizes internally
    matrix::SetNumThreads(threads);
    double t_base = bench::TimeSeconds([&] { w->RunBase(); });
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    mz::Runtime rt(opts);
    double t_mozart = bench::TimeSeconds([&] { w->RunMozart(&rt); });
    double t_fused = bench::TimeSeconds([&] { w->RunFused(threads); });
    std::printf("    t=%-2d  MKL %9.4f s   Mozart %9.4f s (%5.2fx)   fused %9.4f s\n", threads,
                t_base, t_mozart, t_base / t_mozart, t_fused);
  }
  vecmath::SetNumThreads(0);
  matrix::SetNumThreads(0);
}

}  // namespace

int main() {
  bench::Title("Figure 4j-m: MKL-mode numerical workloads (parallel base) — runtime (s)");

  workloads::BlackScholes bs(bench::Scaled(2 << 20), 1);
  RunSeries("j: Black Scholes", &bs, workloads::BlackScholes::NumOperators());

  workloads::Haversine hv(bench::Scaled(4 << 20), 2);
  RunSeries("k: Haversine", &hv, workloads::Haversine::NumOperators());

  workloads::NBody nb(bench::Scaled(1024), 3, 3);
  RunSeries("l: nBody", &nb, workloads::NBody::NumOperators());

  workloads::ShallowWater sw(bench::Scaled(640), 4, 4);
  RunSeries("m: Shallow Water", &sw, workloads::ShallowWater::NumOperators());
  return 0;
}
