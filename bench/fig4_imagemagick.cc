// Figure 4n-o: the Nashville and Gotham ImageMagick filter pipelines. The
// library parallelizes internally (OpenMP stand-in), so like the MKL plots
// the base gets the same threads as Mozart; Mozart's win is cross-operator
// pipelining, and it is capped by the genuine pixel copies in the crop-based
// split and append-based merge (paper: 1.8x / 1.6x end-to-end, 3.4x
// compute-only).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "image/image.h"
#include "workloads/analytics.h"

namespace {

void RunSeries(const char* name, workloads::ImageFilter* w) {
  std::printf("\n  (%s) — %d filter operators, %ld rows\n", name, w->NumOperators(), w->size());
  for (int threads : bench::ThreadSweep()) {
    img::SetNumThreads(threads);
    double t_base = bench::TimeSeconds([&] { w->RunBase(); });
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    mz::Runtime rt(opts);
    double t_mozart = bench::TimeSeconds([&] { w->RunMozart(&rt); });
    double t_fused = bench::TimeSeconds([&] { w->RunFused(threads); });
    std::printf("    t=%-2d  ImageMagick %9.4f s   Mozart %9.4f s (%5.2fx)   fused %9.4f s\n",
                threads, t_base, t_mozart, t_base / t_mozart, t_fused);
  }
  img::SetNumThreads(0);
}

}  // namespace

int main() {
  bench::Title("Figure 4n-o: ImageMagick filter pipelines (parallel base) — runtime (s)");
  long width = bench::Scaled(2560);
  workloads::ImageFilter nashville(workloads::ImageFilter::Filter::kNashville, width, 1440, 1);
  RunSeries("n: Nashville", &nashville);
  workloads::ImageFilter gotham(workloads::ImageFilter::Filter::kGotham, width, 1440, 2);
  RunSeries("o: Gotham", &gotham);
  return 0;
}
