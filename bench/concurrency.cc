// Serving-layer throughput: N simulated clients over one ServingContext.
//
// Each client owns a Session and repeatedly evaluates the same three-node
// vecmath pipeline (log1p / add / div — one pipelined stage) on its own
// buffers. The sweep reports evaluations/second at 1, 4, and 16 clients,
// cold (first round: every client misses the plan cache) vs. warm (plans
// served from cache), plus the plan-cache hit rate and the admission split.
//
// What to look for:
//  * warm throughput should scale with clients until the executor pool
//    saturates, instead of collapsing into oversubscription (admission
//    bounds pool entry; small plans run inline on the client's thread);
//  * warm vs. cold shows the planning cost the cache amortizes away —
//    the Weld-style "build once, run many" win for repeated pipelines.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/cpu.h"
#include "core/client.h"
#include "core/session.h"
#include "vecmath/annotated.h"

namespace {

constexpr long kBaseElems = 1 << 18;  // per client, ~6 MB of doubles
constexpr int kWarmRounds = 8;

struct SweepResult {
  double cold_evals_per_sec = 0;
  double warm_evals_per_sec = 0;
  mz::EvalStats::Snapshot stats;
};

SweepResult RunClients(int num_clients, long n) {
  mz::ServingContext ctx(mz::ServingOptions{
      .pool_threads = 0,  // machine-sized
      .max_pool_sessions = 2,
      .serial_cutoff_elems = 4096,
  });

  std::vector<std::vector<double>> a(static_cast<std::size_t>(num_clients));
  std::vector<std::vector<double>> b(static_cast<std::size_t>(num_clients));
  std::vector<std::vector<double>> out(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    a[static_cast<std::size_t>(c)].assign(static_cast<std::size_t>(n), 1.5 + c);
    b[static_cast<std::size_t>(c)].assign(static_cast<std::size_t>(n), 2.5 + c);
    out[static_cast<std::size_t>(c)].resize(static_cast<std::size_t>(n));
  }

  // One round = every client evaluates the pipeline once.
  auto run_round = [&] {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_clients));
    for (int c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        mz::SessionOptions opts;
        opts.serving = &ctx;
        mz::Session session(opts);
        mz::Session::Scope scope(session);
        auto* pa = a[static_cast<std::size_t>(c)].data();
        auto* pb = b[static_cast<std::size_t>(c)].data();
        auto* po = out[static_cast<std::size_t>(c)].data();
        mzvec::Log1p(n, pa, po);
        mzvec::Add(n, po, pb, po);
        mzvec::Div(n, po, pb, po);
        session.Evaluate();
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  };

  SweepResult r;
  {
    mz::WallTimer timer;
    run_round();  // cold: plan cache empty
    r.cold_evals_per_sec = static_cast<double>(num_clients) / timer.ElapsedSeconds();
  }
  {
    mz::WallTimer timer;
    for (int round = 0; round < kWarmRounds; ++round) {
      run_round();
    }
    r.warm_evals_per_sec =
        static_cast<double>(num_clients) * kWarmRounds / timer.ElapsedSeconds();
  }
  r.stats = ctx.AggregateStats();
  return r;
}

}  // namespace

int main() {
  mzvec::EnsureRegistered();
  const long n = bench::Scaled(kBaseElems);

  bench::Title("Serving throughput: concurrent sessions, cold vs. warm plan cache");
  bench::Note("pipeline: log1p/add/div over " + std::to_string(n) + " doubles per client; " +
              std::to_string(mz::NumLogicalCpus()) + " logical CPUs");

  std::printf("%8s %16s %16s %10s %10s %10s\n", "clients", "cold evals/s", "warm evals/s",
              "hit rate", "inline", "pooled");
  for (int clients : {1, 4, 16}) {
    SweepResult r = RunClients(clients, n);
    double lookups = static_cast<double>(r.stats.plan_cache_hits + r.stats.plan_cache_misses);
    double hit_rate =
        lookups > 0 ? static_cast<double>(r.stats.plan_cache_hits) / lookups : 0.0;
    std::printf("%8d %16.1f %16.1f %9.0f%% %10lld %10lld\n", clients, r.cold_evals_per_sec,
                r.warm_evals_per_sec, 100.0 * hit_rate,
                static_cast<long long>(r.stats.serial_evals),
                static_cast<long long>(r.stats.pooled_evals));
  }
  return 0;
}
