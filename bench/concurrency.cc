// Serving-layer throughput: N simulated clients over one ServingContext.
//
// Three experiments, all reported as *relative* numbers (single-core CI —
// see ROADMAP):
//
//  1. Throughput sweep — 1/4/16 clients each repeatedly evaluating the same
//     three-node vecmath pipeline, cold (first round: every client misses
//     the plan cache) vs. warm, plus hit rate and the admission split.
//     Warm throughput should scale until the pool saturates; warm vs. cold
//     shows the planning cost the cache amortizes away.
//
//  2. Capped plan cache, LRU vs. FIFO — a skewed working set (per client
//     per round: many evaluations cycling a small shared hot set + one
//     one-off size) with the cache capped below the working-set size. LRU
//     keeps the hot templates resident (hit rate stays near the hot
//     fraction); FIFO lets the one-off stream push them out and thrashes.
//
//  3. Loaded pool: fixed vs. adaptive vs. adaptive+batching — half the
//     clients run large pooled plans to congest the queue while the other
//     half run small ones. Watch the policies move: under the adaptive
//     gate, mid-size plans migrate inline ("large inline" column) and
//     token-wait time collapses as the smoothed queue depth climbs; with
//     batching on, the collector coalesces the small-plan stream into far
//     fewer dispatches (paper §6: amortize per-invocation overhead across
//     requests). On a single-core CI box the wall-clock columns are noisy —
//     read the routing and wait columns, not absolute throughput.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/cpu.h"
#include "core/client.h"
#include "core/session.h"
#include "vecmath/annotated.h"

namespace {

constexpr long kBaseElems = 1 << 18;  // per client, ~6 MB of doubles
constexpr int kWarmRounds = 8;

void Pipeline(long n, const double* a, const double* b, double* out) {
  mzvec::Log1p(n, a, out);
  mzvec::Add(n, out, b, out);
  mzvec::Div(n, out, b, out);
}

// ---------------------------------------------------------------- sweep ----

struct SweepResult {
  double cold_evals_per_sec = 0;
  double warm_evals_per_sec = 0;
  mz::EvalStats::Snapshot stats;
};

SweepResult RunClients(int num_clients, long n) {
  mz::ServingContext ctx(mz::ServingOptions{
      .pool_threads = 0,  // machine-sized
      .max_pool_sessions = 2,
      .serial_cutoff_elems = 4096,
  });

  std::vector<std::vector<double>> a(static_cast<std::size_t>(num_clients));
  std::vector<std::vector<double>> b(static_cast<std::size_t>(num_clients));
  std::vector<std::vector<double>> out(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    a[static_cast<std::size_t>(c)].assign(static_cast<std::size_t>(n), 1.5 + c);
    b[static_cast<std::size_t>(c)].assign(static_cast<std::size_t>(n), 2.5 + c);
    out[static_cast<std::size_t>(c)].resize(static_cast<std::size_t>(n));
  }

  // One round = every client evaluates the pipeline once.
  auto run_round = [&] {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_clients));
    for (int c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        mz::SessionOptions opts;
        opts.serving = &ctx;
        mz::Session session(opts);
        mz::Session::Scope scope(session);
        Pipeline(n, a[static_cast<std::size_t>(c)].data(), b[static_cast<std::size_t>(c)].data(),
                 out[static_cast<std::size_t>(c)].data());
        session.Evaluate();
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  };

  SweepResult r;
  {
    mz::WallTimer timer;
    run_round();  // cold: plan cache empty
    r.cold_evals_per_sec = static_cast<double>(num_clients) / timer.ElapsedSeconds();
  }
  {
    mz::WallTimer timer;
    for (int round = 0; round < kWarmRounds; ++round) {
      run_round();
    }
    r.warm_evals_per_sec =
        static_cast<double>(num_clients) * kWarmRounds / timer.ElapsedSeconds();
  }
  r.stats = ctx.AggregateStats();
  return r;
}

// ------------------------------------------------- capped cache, LRU/FIFO ----

struct PolicyResult {
  double warm_hit_rate = 0;  // measured after one warmup round
  std::int64_t evictions = 0;
};

// Skewed access: per client per round, kHotEvals evaluations cycling over
// kHotKeys shared hot sizes plus ONE one-off size never seen again. The
// cache cap leaves room for the hot set plus a couple of one-offs — under
// LRU the constantly touched hot templates are never the victim; under FIFO
// each one-off eviction lands on the oldest *insertion*, i.e. a hot
// template, and the reinsert cascades into the next one.
PolicyResult RunCappedCache(mz::EvictionPolicy policy, int num_clients, long n_hot) {
  constexpr int kHotKeys = 4;
  constexpr int kHotEvals = 16;  // four passes over the hot set per round
  constexpr int kRounds = 6;
  constexpr std::size_t kCacheCap = 6;

  mz::ServingContext ctx(mz::ServingOptions{
      .pool_threads = 0,
      .max_pool_sessions = 2,
      .serial_cutoff_elems = 4096,
      .plan_cache_entries = kCacheCap,
      .plan_cache_policy = policy,
  });

  auto client_body = [&](int c, int rounds, bool measured) {
    const std::size_t size = static_cast<std::size_t>(n_hot) + 4096;
    std::vector<double> a(size, 1.5 + c);
    std::vector<double> b(size, 2.5 + c);
    std::vector<double> out(size);
    mz::SessionOptions opts;
    opts.serving = &ctx;
    mz::Session session(opts);
    mz::Session::Scope scope(session);
    for (int r = 0; r < rounds; ++r) {
      for (int e = 0; e < kHotEvals; ++e) {
        // Hot sizes are shared across every client: kHotKeys plan keys.
        const long n_e = n_hot + 7 * (e % kHotKeys);
        Pipeline(n_e, a.data(), b.data(), out.data());
        session.Evaluate();
        session.Reset();
      }
      if (measured) {
        // One-off: a size unique to (client, round) — a new plan key that
        // is inserted once and never looked up again.
        const long n_unique = n_hot + 7 * kHotKeys + 1 + c * kRounds + r;
        Pipeline(n_unique, a.data(), b.data(), out.data());
        session.Evaluate();
        session.Reset();
      }
    }
  };

  client_body(0, 1, /*measured=*/false);  // warmup: hot templates resident
  const std::int64_t hits0 = ctx.plan_cache().hits();
  const std::int64_t misses0 = ctx.plan_cache().misses();

  std::vector<std::thread> threads;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back(client_body, c, kRounds, true);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  PolicyResult r;
  const double hits = static_cast<double>(ctx.plan_cache().hits() - hits0);
  const double misses = static_cast<double>(ctx.plan_cache().misses() - misses0);
  r.warm_hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
  r.evictions = ctx.plan_cache().evictions();
  return r;
}

// ------------------------------------- loaded pool, fixed vs. adaptive ----

struct LoadedResult {
  double small_cold_evals_per_sec = 0;
  double small_warm_evals_per_sec = 0;
  mz::EvalStats::Snapshot stats;
  std::int64_t batch_dispatches = 0;
  std::int64_t batch_jobs = 0;
};

// `small_clients` evaluate a tiny pipeline while `large_clients` congest
// the shared pool with full-width plans for a fixed amount of work.
// Small-client throughput and where the large plans ran (pooled vs. pushed
// inline by the adaptive cutoff) are what the policies move.
LoadedResult RunLoaded(bool adaptive, bool batching, int small_clients, int large_clients,
                       long n_small, long n_large) {
  constexpr int kSmallRounds = 30;
  constexpr int kLargeRounds = 6;

  mz::ServingOptions serving;
  // At least 4 workers even on a small machine: queue depth only builds
  // when stage dispatches actually queue, and the adaptive gate needs depth
  // to observe.
  serving.pool_threads = std::max(4, mz::NumLogicalCpus());
  serving.max_pool_sessions = 2;
  serving.serial_cutoff_elems = 2048;
  serving.adaptive_admission = adaptive;
  // React to shallow queues too: a handful of queued stage dispatches is
  // already contention at this plan size.
  serving.admission_tuning.congested_depth = 4.0;
  serving.admission_tuning.ewma_alpha = 0.4;
  // The experiment is about mid-size plans migrating inline, so the cutoff
  // range must actually reach them: at full congestion even the large
  // plans qualify, whatever the bench scale made them.
  serving.admission_tuning.base_cutoff_elems = serving.serial_cutoff_elems;
  serving.admission_tuning.max_cutoff_elems = 2 * n_large;
  // The window must stay well under a small plan's execution cost or the
  // wait dominates what batching amortizes.
  serving.batch_window_us = batching ? 25 : 0;
  serving.batch_max_plans = 8;
  mz::ServingContext ctx(serving);

  std::vector<std::thread> large;
  for (int c = 0; c < large_clients; ++c) {
    large.emplace_back([&, c] {
      const std::size_t size = static_cast<std::size_t>(n_large);
      std::vector<double> a(size, 1.5 + c);
      std::vector<double> b(size, 2.5 + c);
      std::vector<double> out(size);
      mz::SessionOptions opts;
      opts.serving = &ctx;
      mz::Session session(opts);
      mz::Session::Scope scope(session);
      for (int r = 0; r < kLargeRounds; ++r) {
        Pipeline(n_large, a.data(), b.data(), out.data());
        session.Evaluate();
        session.Reset();
      }
    });
  }

  auto run_small_round = [&](int rounds) {
    std::vector<std::thread> threads;
    for (int c = 0; c < small_clients; ++c) {
      threads.emplace_back([&, c] {
        const std::size_t size = static_cast<std::size_t>(n_small);
        std::vector<double> a(size, 1.5 + c);
        std::vector<double> b(size, 2.5 + c);
        std::vector<double> out(size);
        mz::SessionOptions opts;
        opts.serving = &ctx;
        mz::Session session(opts);
        mz::Session::Scope scope(session);
        for (int r = 0; r < rounds; ++r) {
          Pipeline(n_small, a.data(), b.data(), out.data());
          session.Evaluate();
          session.Reset();
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  };

  LoadedResult r;
  {
    mz::WallTimer timer;
    run_small_round(1);  // cold
    r.small_cold_evals_per_sec = static_cast<double>(small_clients) / timer.ElapsedSeconds();
  }
  {
    mz::WallTimer timer;
    run_small_round(kSmallRounds);  // warm, under load
    r.small_warm_evals_per_sec =
        static_cast<double>(small_clients) * kSmallRounds / timer.ElapsedSeconds();
  }
  for (std::thread& t : large) {
    t.join();
  }
  r.stats = ctx.AggregateStats();
  if (ctx.batcher() != nullptr) {
    r.batch_dispatches = ctx.batcher()->dispatches();
    r.batch_jobs = ctx.batcher()->jobs();
  }
  return r;
}

}  // namespace

int main() {
  mzvec::EnsureRegistered();
  const long n = bench::Scaled(kBaseElems);

  bench::Title("Serving throughput: concurrent sessions, cold vs. warm plan cache");
  bench::Note("pipeline: log1p/add/div over " + std::to_string(n) + " doubles per client; " +
              std::to_string(mz::NumLogicalCpus()) + " logical CPUs");

  std::printf("%8s %16s %16s %10s %10s %10s\n", "clients", "cold evals/s", "warm evals/s",
              "hit rate", "inline", "pooled");
  for (int clients : {1, 4, 16}) {
    SweepResult r = RunClients(clients, n);
    double lookups = static_cast<double>(r.stats.plan_cache_hits + r.stats.plan_cache_misses);
    double hit_rate =
        lookups > 0 ? static_cast<double>(r.stats.plan_cache_hits) / lookups : 0.0;
    std::printf("%8d %16.1f %16.1f %9.0f%% %10lld %10lld\n", clients, r.cold_evals_per_sec,
                r.warm_evals_per_sec, 100.0 * hit_rate,
                static_cast<long long>(r.stats.serial_evals),
                static_cast<long long>(r.stats.pooled_evals));
    const std::string cfg = "clients=" + std::to_string(clients);
    bench::Metric("concurrency", "sweep", cfg, "cold_evals_per_sec", r.cold_evals_per_sec);
    bench::Metric("concurrency", "sweep", cfg, "warm_evals_per_sec", r.warm_evals_per_sec);
    bench::Metric("concurrency", "sweep", cfg, "plan_cache_hit_rate", hit_rate);
    bench::Metric("concurrency", "sweep", cfg, "serial_evals",
                  static_cast<double>(r.stats.serial_evals));
    bench::Metric("concurrency", "sweep", cfg, "pooled_evals",
                  static_cast<double>(r.stats.pooled_evals));
  }

  bench::Title("Capped plan cache (6 entries), skewed working set: LRU vs. FIFO");
  bench::Note("16 clients x 6 rounds x (16 hot evals over 4 shared sizes + 1 one-off size); "
              "warm hit rate should approach the 16/17 ~ 94% hot fraction under LRU and "
              "collapse under FIFO");
  const long n_hot = bench::Scaled(1 << 14);
  std::printf("%8s %14s %12s\n", "policy", "warm hit rate", "evictions");
  for (mz::EvictionPolicy policy : {mz::EvictionPolicy::kLru, mz::EvictionPolicy::kFifo}) {
    PolicyResult r = RunCappedCache(policy, /*num_clients=*/16, n_hot);
    const char* name = policy == mz::EvictionPolicy::kLru ? "LRU" : "FIFO";
    std::printf("%8s %13.1f%% %12lld\n", name, 100.0 * r.warm_hit_rate,
                static_cast<long long>(r.evictions));
    bench::Metric("concurrency", "capped_cache", name, "warm_hit_rate", r.warm_hit_rate);
    bench::Metric("concurrency", "capped_cache", name, "evictions",
                  static_cast<double>(r.evictions));
  }

  bench::Title("Loaded pool: small-plan throughput, fixed vs. adaptive admission");
  const long n_large = bench::Scaled(kBaseElems * 4);
  bench::Note("8 small clients (1024 elems) vs. 8 large clients (" + std::to_string(n_large) +
              " elems) congesting the pool; the adaptive gate pushes mid-size plans inline as "
              "queue depth climbs, and the collector coalesces small dispatches");
  std::printf("%22s %16s %16s %10s %14s %10s\n", "config", "cold evals/s", "warm evals/s",
              "batched", "large inline", "wait ms");
  struct Config {
    const char* name;
    bool adaptive;
    bool batching;
  };
  const std::int64_t small_total = 8 * (1 + 30);  // smalls are always inline-class
  for (const Config& cfg : {Config{"fixed", false, false}, Config{"adaptive", true, false},
                            Config{"adaptive+batching", true, true}}) {
    // n_small is deliberately NOT scaled: it must stay under the 2048-elem
    // base cutoff (inline-class) at every MOZART_BENCH_SCALE.
    LoadedResult r = RunLoaded(cfg.adaptive, cfg.batching, /*small_clients=*/8,
                               /*large_clients=*/8, /*n_small=*/1024, n_large);
    std::printf("%22s %16.1f %16.1f %10lld %14lld %10.2f\n", cfg.name,
                r.small_cold_evals_per_sec, r.small_warm_evals_per_sec,
                static_cast<long long>(r.stats.batched_evals),
                static_cast<long long>(r.stats.serial_evals - small_total),
                static_cast<double>(r.stats.admission_wait_ns) * 1e-6);
    bench::Metric("concurrency", "loaded_pool", cfg.name, "small_cold_evals_per_sec",
                  r.small_cold_evals_per_sec);
    bench::Metric("concurrency", "loaded_pool", cfg.name, "small_warm_evals_per_sec",
                  r.small_warm_evals_per_sec);
    bench::Metric("concurrency", "loaded_pool", cfg.name, "batched_evals",
                  static_cast<double>(r.stats.batched_evals));
    bench::Metric("concurrency", "loaded_pool", cfg.name, "large_inline",
                  static_cast<double>(r.stats.serial_evals - small_total));
    bench::Metric("concurrency", "loaded_pool", cfg.name, "admission_wait_ms",
                  static_cast<double>(r.stats.admission_wait_ns) * 1e-6);
    if (cfg.batching && r.batch_dispatches > 0) {
      bench::Note("batcher: " + std::to_string(r.batch_jobs) + " jobs in " +
                  std::to_string(r.batch_dispatches) + " dispatches");
    }
  }
  return 0;
}
