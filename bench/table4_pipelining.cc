// Table 4: the importance of pipelining. Compares, on the maximum thread
// count: the parallel base library, Mozart with pipelining disabled
// (parallelize-only, "-pipe"), and full Mozart — reporting normalized
// runtime plus LLC miss rate and IPC from hardware counters.
//
// Paper shape: Mozart(-pipe) ≈ parallel MKL (no win from re-parallelizing an
// already-parallel library), while pipelining halves the LLC miss rate and
// delivers the speedup. Counters may be unavailable in containers; runtime
// ratios stand alone.
//
// Extension (ISSUE 4): a three-way ablation over *multi-stage* workloads —
// `-pipe` / `+pipe,-elide` / `+pipe,+elide` — reporting merge_ns, split_ns,
// and boundaries_elided, so the stage-boundary piece-passing win is visible
// in one table. Two workloads exercise the two carry classes:
//  * interleaved: two in-place vecmath chains over different lengths, whose
//    conflicting ArraySplit params force a stage break at every node — the
//    mut arrays carry as identity pieces (split elision);
//  * column-chain: an owned Column stream crossing serial checkpoint stages
//    with intermediate futures dropped — boundary merges (concat) and
//    re-splits (slice) elide outright (merge byte elision).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/client.h"
#include "core/perf_counters.h"
#include "core/runtime.h"
#include "dataframe/annotated.h"
#include "vecmath/annotated.h"
#include "vecmath/vecmath.h"
#include "workloads/numerical.h"

namespace {

struct Measured {
  double seconds = 0;
  mz::PerfCounterGroup::Reading counters;
  bool counters_ok = false;
};

template <typename Fn>
Measured Measure(Fn fn) {
  Measured m;
  fn();  // warm up
  mz::PerfCounterGroup group;
  group.Start();
  mz::WallTimer timer;
  fn();
  m.seconds = timer.ElapsedSeconds();
  m.counters = group.Stop();
  m.counters_ok = group.available();
  return m;
}

void PrintRow(const char* config, const Measured& m, double base_seconds) {
  if (m.counters_ok) {
    std::printf("    %-16s norm-runtime %5.2f   LLC-miss %6.2f%%   IPC %5.2f\n", config,
                m.seconds / base_seconds, 100.0 * m.counters.LlcMissRate(), m.counters.Ipc());
  } else {
    std::printf("    %-16s norm-runtime %5.2f   LLC-miss    n/a   IPC   n/a\n", config,
                m.seconds / base_seconds);
  }
}

template <typename W>
void RunWorkload(const char* name, W* w, int threads) {
  std::printf("\n  %s (threads=%d, n=%ld)\n", name, threads, w->size());
  vecmath::SetNumThreads(threads);
  Measured base = Measure([&] { w->RunBase(); });

  mz::RuntimeOptions nopipe_opts;
  nopipe_opts.num_threads = threads;
  nopipe_opts.pipeline = false;
  mz::Runtime nopipe_rt(nopipe_opts);
  Measured nopipe = Measure([&] { w->RunMozart(&nopipe_rt); });

  mz::RuntimeOptions full_opts;
  full_opts.num_threads = threads;
  mz::Runtime full_rt(full_opts);
  Measured full = Measure([&] { w->RunMozart(&full_rt); });

  PrintRow("MKL", base, base.seconds);
  PrintRow("Mozart(-pipe)", nopipe, base.seconds);
  PrintRow("Mozart", full, base.seconds);
  vecmath::SetNumThreads(0);

  bench::Metric("table4", name, "base", "seconds", base.seconds);
  bench::Metric("table4", name, "-pipe", "seconds", nopipe.seconds);
  bench::Metric("table4", name, "+pipe", "seconds", full.seconds);
}

// ---- three-way elision ablation over multi-stage workloads ----

struct AblationConfig {
  const char* name;
  bool pipeline;
  bool elide;
};

constexpr AblationConfig kAblation[] = {
    {"-pipe", false, false},
    {"+pipe,-elide", true, false},
    {"+pipe,+elide", true, true},
};

struct AblationResult {
  double seconds = 0;
  mz::EvalStats::Snapshot stats;
};

// Two in-place vecmath chains over different lengths, interleaved so every
// node conflicts with the open stage (ArraySplit<n> vs ArraySplit<m>).
struct InterleavedChains {
  long n;
  long m;
  int rounds;
  std::vector<double> x, y;

  InterleavedChains(long n_in, int rounds_in)
      : n(n_in), m(n_in / 2), rounds(rounds_in),
        x(static_cast<std::size_t>(n), 1.000001), y(static_cast<std::size_t>(m), 1.000002) {}

  void Run(mz::Runtime* rt) {
    mz::RuntimeScope scope(rt);
    for (int k = 0; k < rounds; ++k) {
      mzvec::MulC(n, x.data(), 1.0000001, x.data());
      mzvec::MulC(m, y.data(), 1.0000002, y.data());
    }
    rt->Evaluate();
  }
};

// An owned Column stream crossing serial checkpoint stages; intermediate
// futures are dropped so the boundary merges can elide.
struct ColumnChain {
  long n;
  int rounds;
  df::Column base;

  static const mz::Annotated<void(long)>& Tick() {
    static long sink = 0;
    static const mz::Annotated<void(long)> tick(
        [](long k) { sink += k; },
        mz::AnnotationBuilder("table4.tick").Arg("k", mz::NoSplit()).Build());
    return tick;
  }

  ColumnChain(long n_in, int rounds_in) : n(n_in), rounds(rounds_in) {
    std::vector<double> vals(static_cast<std::size_t>(n));
    for (long i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] = static_cast<double>(i % 1000) * 0.001;
    }
    base = df::Column::Doubles(std::move(vals));
  }

  void Run(mz::Runtime* rt) {
    mz::RuntimeScope scope(rt);
    mz::Future<df::Column> cur = mzdf::ColMulC(base, 1.0001);
    for (int k = 0; k < rounds; ++k) {
      auto next = mzdf::ColAddC(cur, 0.0001);
      Tick()(k);
      cur = next;
    }
    volatile double sink = mzdf::ColSum(cur).get();
    (void)sink;
  }
};

template <typename W>
void RunAblation(const char* name, W* w, int threads) {
  std::printf("\n  %s (threads=%d)\n", name, threads);
  std::printf("    %-14s %9s %12s %12s %10s %10s\n", "config", "seconds", "merge_ms",
              "split_ms", "elided", "carried");
  for (const AblationConfig& cfg : kAblation) {
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    opts.pipeline = cfg.pipeline;
    opts.elide_boundaries = cfg.elide;
    mz::Runtime rt(opts);
    w->Run(&rt);  // warm up
    rt.stats().Reset();
    mz::WallTimer timer;
    w->Run(&rt);
    AblationResult r;
    r.seconds = timer.ElapsedSeconds();
    r.stats = rt.stats().Take();
    std::printf("    %-14s %9.4f %12.3f %12.3f %10lld %10lld\n", cfg.name, r.seconds,
                static_cast<double>(r.stats.merge_ns) * 1e-6,
                static_cast<double>(r.stats.split_ns) * 1e-6,
                static_cast<long long>(r.stats.boundaries_elided),
                static_cast<long long>(r.stats.carry_pieces));
    bench::Metric("table4_ablation", name, cfg.name, "seconds", r.seconds);
    bench::Metric("table4_ablation", name, cfg.name, "merge_ns",
                  static_cast<double>(r.stats.merge_ns));
    bench::Metric("table4_ablation", name, cfg.name, "split_ns",
                  static_cast<double>(r.stats.split_ns));
    bench::Metric("table4_ablation", name, cfg.name, "boundaries_elided",
                  static_cast<double>(r.stats.boundaries_elided));
    bench::Metric("table4_ablation", name, cfg.name, "carry_pieces",
                  static_cast<double>(r.stats.carry_pieces));
    bench::Metric("table4_ablation", name, cfg.name, "bytes_merge_avoided",
                  static_cast<double>(r.stats.bytes_merge_avoided));
  }
}

}  // namespace

int main() {
  bench::Title("Table 4: pipelining ablation — normalized runtime, LLC miss rate, IPC");
  int threads = mz::NumLogicalCpus();
  workloads::BlackScholes bs(bench::Scaled(4 << 20), 1);
  RunWorkload("Black Scholes", &bs, threads);
  workloads::Haversine hv(bench::Scaled(8 << 20), 2);
  RunWorkload("Haversine", &hv, threads);

  bench::Title(
      "Table 4b: stage-boundary elision ablation (multi-stage workloads; relative numbers)");
  InterleavedChains inter(bench::Scaled(4 << 20), 8);
  RunAblation("interleaved-sizes", &inter, threads);
  ColumnChain chain(bench::Scaled(2 << 20), 8);
  RunAblation("column-chain", &chain, threads);
  return 0;
}
