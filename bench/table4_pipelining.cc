// Table 4: the importance of pipelining. Compares, on the maximum thread
// count: the parallel base library, Mozart with pipelining disabled
// (parallelize-only, "-pipe"), and full Mozart — reporting normalized
// runtime plus LLC miss rate and IPC from hardware counters.
//
// Paper shape: Mozart(-pipe) ≈ parallel MKL (no win from re-parallelizing an
// already-parallel library), while pipelining halves the LLC miss rate and
// delivers the speedup. Counters may be unavailable in containers; runtime
// ratios stand alone.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/perf_counters.h"
#include "core/runtime.h"
#include "vecmath/vecmath.h"
#include "workloads/numerical.h"

namespace {

struct Measured {
  double seconds = 0;
  mz::PerfCounterGroup::Reading counters;
  bool counters_ok = false;
};

template <typename Fn>
Measured Measure(Fn fn) {
  Measured m;
  fn();  // warm up
  mz::PerfCounterGroup group;
  group.Start();
  mz::WallTimer timer;
  fn();
  m.seconds = timer.ElapsedSeconds();
  m.counters = group.Stop();
  m.counters_ok = group.available();
  return m;
}

void PrintRow(const char* config, const Measured& m, double base_seconds) {
  if (m.counters_ok) {
    std::printf("    %-16s norm-runtime %5.2f   LLC-miss %6.2f%%   IPC %5.2f\n", config,
                m.seconds / base_seconds, 100.0 * m.counters.LlcMissRate(), m.counters.Ipc());
  } else {
    std::printf("    %-16s norm-runtime %5.2f   LLC-miss    n/a   IPC   n/a\n", config,
                m.seconds / base_seconds);
  }
}

template <typename W>
void RunWorkload(const char* name, W* w, int threads) {
  std::printf("\n  %s (threads=%d, n=%ld)\n", name, threads, w->size());
  vecmath::SetNumThreads(threads);
  Measured base = Measure([&] { w->RunBase(); });

  mz::RuntimeOptions nopipe_opts;
  nopipe_opts.num_threads = threads;
  nopipe_opts.pipeline = false;
  mz::Runtime nopipe_rt(nopipe_opts);
  Measured nopipe = Measure([&] { w->RunMozart(&nopipe_rt); });

  mz::RuntimeOptions full_opts;
  full_opts.num_threads = threads;
  mz::Runtime full_rt(full_opts);
  Measured full = Measure([&] { w->RunMozart(&full_rt); });

  PrintRow("MKL", base, base.seconds);
  PrintRow("Mozart(-pipe)", nopipe, base.seconds);
  PrintRow("Mozart", full, base.seconds);
  vecmath::SetNumThreads(0);
}

}  // namespace

int main() {
  bench::Title("Table 4: pipelining ablation — normalized runtime, LLC miss rate, IPC");
  int threads = mz::NumLogicalCpus();
  workloads::BlackScholes bs(bench::Scaled(4 << 20), 1);
  RunWorkload("Black Scholes", &bs, threads);
  workloads::Haversine hv(bench::Scaled(8 << 20), 2);
  RunWorkload("Haversine", &hv, threads);
  return 0;
}
