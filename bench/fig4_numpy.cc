// Figure 4a-d: the four numerical workloads against a *single-threaded*
// library (the NumPy baselines), vs Mozart and the fused-compiler stand-in
// on 1..N threads.
//
// Paper shape: near-linear Mozart scaling for Black Scholes/Haversine
// (4a, 4b: 12.9x/13.6x on 16 threads there); smaller wins for nBody and
// Shallow Water (4c, 4d: 4.6x/1.8x) whose stencil/indexing stages cannot be
// split.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "matrix/matrix.h"
#include "vecmath/vecmath.h"
#include "workloads/numerical.h"

namespace {

template <typename W>
void RunSeries(const char* name, W* w, int num_operators) {
  std::printf("\n  (%s) — %d library calls, n = %ld\n", name, num_operators, w->size());
  vecmath::SetNumThreads(1);  // NumPy: single-threaded kernels
  matrix::SetNumThreads(1);
  double t_base = bench::TimeSeconds([&] { w->RunBase(); });
  std::printf("    %-22s %10.4f s\n", "NumPy (1 thread)", t_base);
  for (int threads : bench::ThreadSweep()) {
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    mz::Runtime rt(opts);
    double t_mozart = bench::TimeSeconds([&] { w->RunMozart(&rt); });
    double t_fused = bench::TimeSeconds([&] { w->RunFused(threads); });
    std::printf("    t=%-2d  Mozart %10.4f s (%5.2fx)   fused-compiler %10.4f s (%5.2fx)\n",
                threads, t_mozart, t_base / t_mozart, t_fused, t_base / t_fused);
  }
  vecmath::SetNumThreads(0);
  matrix::SetNumThreads(0);
}

}  // namespace

int main() {
  bench::Title("Figure 4a-d: NumPy-mode numerical workloads — runtime (s) and speedup");

  workloads::BlackScholes bs(bench::Scaled(2 << 20), 1);
  RunSeries("a: Black Scholes", &bs, workloads::BlackScholes::NumOperators());

  workloads::Haversine hv(bench::Scaled(4 << 20), 2);
  RunSeries("b: Haversine", &hv, workloads::Haversine::NumOperators());

  workloads::NBody nb(bench::Scaled(1024), 3, 3);
  RunSeries("c: nBody", &nb, workloads::NBody::NumOperators());

  workloads::ShallowWater sw(bench::Scaled(640), 4, 4);
  RunSeries("d: Shallow Water", &sw, workloads::ShallowWater::NumOperators());
  return 0;
}
