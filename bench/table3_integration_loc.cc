// Table 3: integration effort. Counts the lines of code an annotator wrote
// per library integration in this repository (the SA declarations plus the
// splitting-API implementations in each annotated.cc/.h) and prints them
// alongside the paper's reported numbers for SAs and for the equivalent Weld
// integrations.
//
// Paper shape: SAs need up to 17x less code than rewriting operators in a
// compiler IR; whole libraries integrate in O(100) lines.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"

#ifndef MOZART_SOURCE_DIR
#define MOZART_SOURCE_DIR "."
#endif

namespace {

// Counts non-blank, non-pure-comment lines.
long CountLoc(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return -1;
  }
  long count = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;
    }
    if (line.compare(first, 2, "//") == 0) {
      continue;
    }
    ++count;
  }
  return count;
}

struct Row {
  const char* library;
  std::vector<const char*> files;
  int paper_sa_loc;    // paper Table 3, "LoC for SAs" total
  int paper_weld_loc;  // paper Table 3, "LoC for Weld" total (0 = none reported)
};

}  // namespace

int main() {
  bench::Title("Table 3: integration effort (lines of code per library integration)");
  const std::string root = MOZART_SOURCE_DIR;
  const Row rows[] = {
      {"vecmath (MKL/NumPy)",
       {"src/vecmath/annotated.h", "src/vecmath/annotated.cc"},
       155,  // paper: MKL total
       394},
      {"matrix (MKL/NumPy)",
       {"src/matrix/annotated.h", "src/matrix/annotated.cc"},
       84,  // paper: NumPy total
       394},
      {"dataframe (Pandas)",
       {"src/dataframe/annotated.h", "src/dataframe/annotated.cc"},
       121,
       2076},
      {"nlp (spaCy)", {"src/nlp/annotated.h", "src/nlp/annotated.cc"}, 20, 0},
      {"image (ImageMagick)", {"src/image/annotated.h", "src/image/annotated.cc"}, 112, 0},
  };
  std::printf("  %-22s %12s %14s %16s\n", "library", "ours (LoC)", "paper SAs", "paper Weld");
  long ours_total = 0;
  for (const Row& row : rows) {
    long loc = 0;
    for (const char* file : row.files) {
      long c = CountLoc(root + "/" + file);
      if (c > 0) {
        loc += c;
      }
    }
    ours_total += loc;
    if (row.paper_weld_loc > 0) {
      std::printf("  %-22s %12ld %14d %16d\n", row.library, loc, row.paper_sa_loc,
                  row.paper_weld_loc);
    } else {
      std::printf("  %-22s %12ld %14d %16s\n", row.library, loc, row.paper_sa_loc, "n/a");
    }
  }
  std::printf("  %-22s %12ld\n", "total", ours_total);
  bench::Note("Weld-equivalent effort in this repo: src/baselines/fused.cc "
              "reimplements every workload kernel by hand (" );
  long fused = CountLoc(root + "/src/baselines/fused.cc");
  std::printf("  fused baseline kernels: %ld LoC for 10 workloads — and each new pipeline "
              "needs a new kernel,\n  while the SA integrations above cover arbitrary "
              "compositions of the annotated operators.\n",
              fused);
  return 0;
}
