// Design-choice ablation (DESIGN.md): static partitioning (the paper's
// choice, §5.2) vs dynamic work stealing, on a uniform workload (Black
// Scholes — per-element cost constant) and a skewed one (a filter whose
// surviving rows concentrate in one region, so static ranges imbalance the
// piece-construction work).
//
// Expected: parity within noise on both — the paper's rationale for
// defaulting to static ("it is simpler to schedule and... leads to similar
// results for most workloads"). Work stealing would only separate on loads
// with strong per-element cost skew and many more cores than this box has.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "dataframe/annotated.h"
#include "dataframe/ops.h"
#include "workloads/numerical.h"

namespace {

double RunFilterSum(mz::Runtime* rt, const df::DataFrame& frame) {
  mz::RuntimeScope scope(rt);
  mz::Future<double> sum;
  {
    auto col = mzdf::ColFromFrame(frame, 0);
    auto mask = mzdf::ColGtC(col, 0.5);
    auto kept = mzdf::FilterRows(frame, mask);
    auto vals = mzdf::ColFromFrame(kept, 1);
    sum = mzdf::ColSum(vals);
  }
  return sum.get();
}

}  // namespace

int main() {
  bench::Title("Ablation: static partitioning (paper default) vs dynamic work stealing");
  int threads = mz::NumLogicalCpus();

  std::printf("\n  uniform load: Black Scholes (%d threads)\n", threads);
  workloads::BlackScholes bs(bench::Scaled(4 << 20), 1);
  for (bool dynamic : {false, true}) {
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    opts.dynamic_scheduling = dynamic;
    mz::Runtime rt(opts);
    double t = bench::TimeSeconds([&] { bs.RunMozart(&rt); });
    std::printf("    %-8s %8.4f s\n", dynamic ? "dynamic" : "static", t);
  }

  std::printf("\n  skewed load: filter keeping only the last 12.5%% of rows (%d threads)\n",
              threads);
  const long n = bench::Scaled(8000000);
  std::vector<double> flag(static_cast<std::size_t>(n), 0.0);
  std::vector<double> vals(static_cast<std::size_t>(n));
  for (long i = 7 * n / 8; i < n; ++i) {
    flag[static_cast<std::size_t>(i)] = 1.0;
  }
  for (long i = 0; i < n; ++i) {
    vals[static_cast<std::size_t>(i)] = static_cast<double>(i % 1000);
  }
  df::DataFrame frame = df::DataFrame::Make(
      {"flag", "val"},
      {df::Column::Doubles(std::move(flag)), df::Column::Doubles(std::move(vals))});
  for (bool dynamic : {false, true}) {
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    opts.dynamic_scheduling = dynamic;
    mz::Runtime rt(opts);
    double t = bench::TimeSeconds([&] { (void)RunFilterSum(&rt, frame); });
    std::printf("    %-8s %8.4f s\n", dynamic ? "dynamic" : "static", t);
  }
  return 0;
}
