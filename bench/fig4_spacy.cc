// Figure 4i: Speech Tag with spaCy. The library is single-threaded and the
// work is per-document, so Mozart's win is pure minibatch parallelism (the
// paper reports 12.4x on 16 threads; no compiler supported spaCy).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "workloads/analytics.h"

int main() {
  bench::Title("Figure 4i: Speech Tag (nlp as spaCy) — runtime (s)");
  workloads::SpeechTag w(bench::Scaled(12000), 120, 7);
  std::printf("  corpus: %ld documents\n", w.size());
  double t_base = bench::TimeSeconds([&] { w.RunBase(); });
  std::printf("  %-22s %10.4f s\n", "spaCy (1 thread)", t_base);
  for (int threads : bench::ThreadSweep()) {
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    mz::Runtime rt(opts);
    double t_mozart = bench::TimeSeconds([&] { w.RunMozart(&rt); });
    std::printf("  t=%-2d  Mozart %10.4f s (%5.2fx)\n", threads, t_mozart, t_base / t_mozart);
  }
  return 0;
}
