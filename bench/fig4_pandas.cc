// Figure 4e-h: the Pandas workloads. Pandas is single-threaded, so the base
// runs on one thread; Mozart parallelizes and pipelines; the fused baseline
// stands in for Weld.
//
// Paper shape: Data Cleaning 14.9x and Crime Index 10.2x (fully
// pipelineable); Birth Analysis 4.7x (group-by bound, no pipelined
// operators); MovieLens 2.1x (join-result movement dominates). Weld wins
// where interpreted-Python overhead dominated (cleaning/crime) — here that
// shows as the fused single-pass string kernel beating operator-at-a-time
// execution.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "workloads/analytics.h"

namespace {

template <typename W>
void RunSeries(const char* name, W* w, int num_operators, bool has_fused = true) {
  std::printf("\n  (%s) — %d library calls, rows = %ld\n", name, num_operators, w->size());
  double t_base = bench::TimeSeconds([&] { w->RunBase(); });
  std::printf("    %-22s %10.4f s\n", "Pandas (1 thread)", t_base);
  for (int threads : bench::ThreadSweep()) {
    mz::RuntimeOptions opts;
    opts.num_threads = threads;
    mz::Runtime rt(opts);
    double t_mozart = bench::TimeSeconds([&] { w->RunMozart(&rt); });
    if (has_fused) {
      double t_fused = bench::TimeSeconds([&] { w->RunFused(threads); });
      std::printf("    t=%-2d  Mozart %10.4f s (%5.2fx)   Weld(fused) %10.4f s (%5.2fx)\n",
                  threads, t_mozart, t_base / t_mozart, t_fused, t_base / t_fused);
    } else {
      std::printf("    t=%-2d  Mozart %10.4f s (%5.2fx)\n", threads, t_mozart,
                  t_base / t_mozart);
    }
  }
}

}  // namespace

int main() {
  bench::Title("Figure 4e-h: Pandas workloads — runtime (s) and speedup over 1-thread library");

  workloads::DataCleaning dc(bench::Scaled(2000000), 1);
  RunSeries("e: Data Cleaning", &dc, workloads::DataCleaning::NumOperators());

  workloads::CrimeIndex ci(bench::Scaled(4000000), 2);
  RunSeries("f: Crime Index", &ci, workloads::CrimeIndex::NumOperators());

  workloads::BirthAnalysis ba(bench::Scaled(4000000), 3);
  RunSeries("g: Birth Analysis", &ba, workloads::BirthAnalysis::NumOperators());

  workloads::MovieLens ml(bench::Scaled(2000000), 4);
  RunSeries("h: MovieLens", &ml, workloads::MovieLens::NumOperators());
  return 0;
}
