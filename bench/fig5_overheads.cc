// Figure 5: breakdown of total running time into client (task registration),
// unprotect (lazy-heap permission flips), planner, split, task execution,
// and merge, for Black Scholes and Nashville.
//
// Paper shape: task execution dominates everywhere; client + planner < 0.5%;
// Nashville has the largest split+merge share because its splitter crops and
// its merger blits real pixels. Also microbenchmarks the mprotect cost per
// GB that motivates the paper's pkeys discussion (§8.5).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/lazy_heap.h"
#include "core/runtime.h"
#include "core/stats.h"
#include "workloads/analytics.h"
#include "workloads/numerical.h"

namespace {

void PrintBreakdown(const char* name, const mz::EvalStats::Snapshot& s) {
  double total = static_cast<double>(s.TotalNs());
  auto pct = [&](std::int64_t ns) { return 100.0 * static_cast<double>(ns) / total; };
  std::printf("  %-14s client %5.2f%%  unprotect %5.2f%%  planner %5.2f%%  split %5.2f%%  "
              "task %6.2f%%  merge %5.2f%%\n",
              name, pct(s.client_ns), pct(s.unprotect_ns), pct(s.planner_ns), pct(s.split_ns),
              pct(s.task_ns), pct(s.merge_ns));
  bench::Metric("fig5", name, "mozart", "client_ns", static_cast<double>(s.client_ns));
  bench::Metric("fig5", name, "mozart", "unprotect_ns", static_cast<double>(s.unprotect_ns));
  bench::Metric("fig5", name, "mozart", "planner_ns", static_cast<double>(s.planner_ns));
  bench::Metric("fig5", name, "mozart", "split_ns", static_cast<double>(s.split_ns));
  bench::Metric("fig5", name, "mozart", "task_ns", static_cast<double>(s.task_ns));
  bench::Metric("fig5", name, "mozart", "merge_ns", static_cast<double>(s.merge_ns));
}

}  // namespace

int main() {
  bench::Title("Figure 5: Mozart running-time breakdown (% of accounted time)");

  {
    workloads::BlackScholes w(bench::Scaled(4 << 20), 1);
    mz::Runtime rt;
    w.RunMozart(&rt);  // warm up
    rt.stats().Reset();
    w.RunMozart(&rt);
    PrintBreakdown("black scholes", rt.stats().Take());
  }
  {
    workloads::ImageFilter w(workloads::ImageFilter::Filter::kNashville, bench::Scaled(2560),
                             1440, 2);
    mz::Runtime rt;
    w.RunMozart(&rt);  // warm up
    rt.stats().Reset();
    w.RunMozart(&rt);
    PrintBreakdown("nashville", rt.stats().Take());
  }

  // The §8.5 microbenchmark: cost of flipping page permissions per GB.
  bench::Title("Figure 5 companion: lazy-heap mprotect cost");
  mz::LazyHeap& heap = mz::LazyHeap::Global();
  const std::size_t kBytes = static_cast<std::size_t>(bench::Scaled(1) * 512) << 20;
  void* p = heap.Alloc(kBytes);
  heap.Unprotect();
  double protect_s = bench::TimeSeconds([&] { heap.Protect(); heap.Unprotect(); }, 5);
  std::printf("  protect+unprotect of %zu MB: %.3f ms (%.2f ms/GB round trip)\n",
              kBytes >> 20, protect_s * 1e3,
              protect_s * 1e3 * 1024.0 / static_cast<double>(kBytes >> 20));
  heap.Free(p);
  return 0;
}
